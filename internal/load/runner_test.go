package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memex/internal/server"
)

// tiny is a sub-second population for runner tests: every client kind
// present, short enough to keep the suite fast.
var tiny = Scenario{
	Name:            "tiny-test",
	Duration:        300 * time.Millisecond,
	Humans:          2,
	HumanThink:      30 * time.Millisecond,
	HumanSearchFrac: 0.3,
	Robots:          1,
	RobotBurst:      5,
	RobotGap:        2 * time.Millisecond,
	RobotIdle:       100 * time.Millisecond,
	MonitorEvery:    40 * time.Millisecond,
	Pages:           10,
	Queries:         2,
	ZipfS:           1.3,
	ZipfV:           1,
}

func testUniverse(sc Scenario) (urls, queries []string) {
	for i := 0; i < sc.Pages; i++ {
		urls = append(urls, fmt.Sprintf("http://load.test.example.org/p%02d.html", i))
	}
	for i := 0; i < sc.Queries; i++ {
		queries = append(queries, fmt.Sprintf("term%d", i))
	}
	return urls, queries
}

// TestRunAgainstLiveServer drives the unit scenario at a real engine
// and checks the whole chain: every scheduled request lands, the
// /metrics delta yields per-endpoint quantiles, a generous budget
// passes, an absurd one demonstrably fails, and the report round-trips
// byte-identically through the trajectory encoding.
func TestRunAgainstLiveServer(t *testing.T) {
	e := newTestEngine(t)
	ts := httptest.NewServer(server.New(e))
	defer ts.Close()

	sc, _ := Lookup("unit")
	urls, queries := testUniverse(sc)
	rep, err := Run(sc, Options{
		Target:      ts.URL,
		URLs:        urls,
		Queries:     queries,
		Seed:        1,
		ScrapeEvery: 50 * time.Millisecond,
		Commit:      "deadbeef",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}

	sched := sc.Schedule(1)
	if rep.Requests != len(sched) {
		t.Fatalf("report says %d requests, schedule has %d", rep.Requests, len(sched))
	}
	var wantWrites, wantReads int
	for _, r := range sched {
		if r.Kind == Visit {
			wantWrites++
		} else {
			wantReads++
		}
	}
	if rep.Writes.Sent != wantWrites || rep.Reads.Sent != wantReads {
		t.Fatalf("sent writes/reads = %d/%d, want %d/%d",
			rep.Writes.Sent, rep.Reads.Sent, wantWrites, wantReads)
	}
	// No admission control configured: nothing may be shed or lost.
	if rep.Writes.OK != wantWrites || rep.Writes.Lost() != 0 || rep.Writes.Shed != 0 {
		t.Fatalf("unlimited server lost writes: %+v", rep.Writes)
	}
	if rep.Reads.OK != wantReads {
		t.Fatalf("unlimited server failed reads: %+v", rep.Reads)
	}
	if rep.EngineDroppedEvents != 0 {
		t.Fatalf("%v events dropped in a tiny run", rep.EngineDroppedEvents)
	}

	// The endpoints the scenario exercises must have rows with measured
	// latency mass.
	for _, want := range []string{"POST /api/event", "GET /api/search", StatusEndpoint} {
		ep, ok := rep.Endpoint(want)
		if !ok || ep.Count == 0 {
			t.Fatalf("no %q row in report (endpoints: %+v)", want, rep.Endpoints)
		}
		if ep.P999Ms <= 0 {
			t.Fatalf("%q has no latency mass: %+v", want, ep)
		}
	}

	if res := Evaluate(rep, Budget{P99StatusReadMs: 60_000}); !res.Pass {
		t.Fatalf("generous budget failed: %v", res.Violations)
	}
	// The gate must demonstrably fail when the budget is violated: no
	// real status read completes in a nanosecond.
	res := Evaluate(rep, Budget{P99StatusReadMs: 1e-6})
	if res.Pass {
		t.Fatal("absurd p99 budget passed")
	}
	if len(res.Violations) != 1 || !strings.Contains(res.Violations[0], "exceeds budget") {
		t.Fatalf("violations = %v", res.Violations)
	}
	if rep.SLO == nil || rep.SLO.Pass {
		t.Fatal("verdict not recorded on the report")
	}

	// Round-trip: the canonical encoding must survive parse → re-emit
	// byte-identically (the benchjson -load contract).
	var buf1, buf2 bytes.Buffer
	if err := rep.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("report did not round-trip byte-identically")
	}
}

// TestRunCountsPoliteSheds rate-limits the target hard enough that most
// of the burst is refused, and checks refusals land in the polite-shed
// column (429 with Retry-After) — not in the lost column the SLO gate
// fails on.
func TestRunCountsPoliteSheds(t *testing.T) {
	e := newTestEngine(t)
	ts := httptest.NewServer(server.NewWith(e, server.Config{RatePerSec: 0.001, Burst: 4}))
	defer ts.Close()

	urls, queries := testUniverse(tiny)
	var scrape bytes.Buffer
	rep, err := Run(tiny, Options{
		Target:      ts.URL,
		URLs:        urls,
		Queries:     queries,
		Seed:        3,
		ScrapeEvery: 50 * time.Millisecond,
		ScrapeOut:   &scrape,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Writes.Shed == 0 {
		t.Fatalf("nothing shed under a 4-token bucket: %+v", rep.Writes)
	}
	if rep.Writes.ShedNoRetryAfter != 0 || rep.Writes.Lost() != 0 {
		t.Fatalf("sheds misclassified: %+v", rep.Writes)
	}
	// Polite sheds are not SLO violations.
	if res := Evaluate(rep, Budget{P99StatusReadMs: 60_000}); !res.Pass {
		t.Fatalf("polite sheds failed the gate: %v", res.Violations)
	}
	// The server-side rejection counters must agree that the event
	// endpoint refused for "rate".
	if ep, ok := rep.Endpoint("POST /api/event"); !ok || ep.Rejected["rate"] == 0 {
		t.Fatalf("no rate rejections recorded: %+v", rep.Endpoints)
	}
	if !strings.Contains(scrape.String(), "memex_http_rejected_total") {
		t.Fatal("ScrapeOut did not receive the raw final scrape")
	}
}

// stubTarget fakes just enough of the API for the runner: healthy
// status/register/search/metrics, with the event endpoint's behavior
// supplied by the test.
func stubTarget(event http.HandlerFunc) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/status", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{})
	})
	mux.HandleFunc("POST /api/user", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /api/search", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode([]any{})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "memex_http_in_flight 0")
	})
	mux.HandleFunc("POST /api/event", event)
	return httptest.NewServer(mux)
}

// TestGateFailsOnLostWrites proves the harness catches a server that
// drops writes with a plain 500 — the exact failure mode admission
// control exists to prevent, and the reason the CI gate exists.
func TestGateFailsOnLostWrites(t *testing.T) {
	ts := stubTarget(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	defer ts.Close()

	urls, queries := testUniverse(tiny)
	rep, err := Run(tiny, Options{Target: ts.URL, URLs: urls, Queries: queries, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Writes.Failed5xx == 0 || rep.Writes.Failed5xx != rep.Writes.Sent {
		t.Fatalf("5xx writes not counted: %+v", rep.Writes)
	}
	res := Evaluate(rep, Budget{})
	if res.Pass {
		t.Fatal("lost writes passed the gate")
	}
	var lost, fivexx bool
	for _, v := range res.Violations {
		if strings.Contains(v, "writes lost") {
			lost = true
		}
		if strings.Contains(v, "5xx") {
			fivexx = true
		}
	}
	if !lost || !fivexx {
		t.Fatalf("violations = %v, want lost-writes and 5xx", res.Violations)
	}
}

// TestGateFailsOnShedWithoutRetryAfter proves the harness distinguishes
// polite backpressure from a bare 503: shedding without Retry-After is
// a violation even though no write was technically lost.
func TestGateFailsOnShedWithoutRetryAfter(t *testing.T) {
	ts := stubTarget(func(w http.ResponseWriter, r *http.Request) {
		// Deliberately no Retry-After header.
		http.Error(w, "overloaded", http.StatusServiceUnavailable) //memexvet:ignore replyorder this stub reproduces the bare-503 misbehavior the gate must catch
	})
	defer ts.Close()

	urls, queries := testUniverse(tiny)
	rep, err := Run(tiny, Options{Target: ts.URL, URLs: urls, Queries: queries, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Writes.ShedNoRetryAfter == 0 || rep.Writes.Shed != 0 {
		t.Fatalf("headerless 503 misclassified: %+v", rep.Writes)
	}
	if rep.Writes.Lost() != 0 {
		t.Fatalf("polite-ish shed counted as lost: %+v", rep.Writes)
	}
	res := Evaluate(rep, Budget{})
	if res.Pass {
		t.Fatal("Retry-After-less sheds passed the gate")
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v, "without Retry-After") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want a Retry-After complaint", res.Violations)
	}
}

func TestRunRejectsUndersizedUniverse(t *testing.T) {
	if _, err := Run(tiny, Options{Target: "http://127.0.0.1:1", URLs: nil, Queries: nil}); err == nil {
		t.Fatal("undersized universe accepted")
	}
}
