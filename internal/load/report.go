package load

// The machine-readable half of the harness: LOAD_<date>_<sha>.json is
// to request latency what BENCH_<date>_<sha>.json is to benchmark
// ns/op — one trajectory point per CI run, committed on main pushes, so
// SLO history accumulates in-repo the same way perf history does.
// cmd/benchjson -load round-trips these files (parse → validate →
// re-emit byte-identically), which is what keeps history-walking tools
// honest about the schema.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SchemaLoad identifies the LOAD_*.json schema version.
const SchemaLoad = "memex-load/1"

// EndpointReport is one endpoint's server-side view of the run: request
// and error deltas from the counters, quantiles interpolated from the
// latency-histogram bucket deltas.
type EndpointReport struct {
	Endpoint string  `json:"endpoint"`
	Count    float64 `json:"count"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	P999Ms   float64 `json:"p999_ms"`
	Err4xx   float64 `json:"err_4xx"`
	Err5xx   float64 `json:"err_5xx"`
	// Rejected splits admission refusals by reason (rate, inflight,
	// queue, foldlag); zero reasons are omitted.
	Rejected map[string]float64 `json:"rejected,omitempty"`
}

// WriteAccounting is the harness-side outcome tally for write requests
// (visits). "Shed" is the polite path — 429/503 with Retry-After — and
// is not an SLO violation; everything under it is.
type WriteAccounting struct {
	Sent int `json:"sent"`
	OK   int `json:"ok"`
	Shed int `json:"shed"`
	// ShedNoRetryAfter counts 429/503 answers missing the Retry-After
	// header: backpressure the client cannot obey.
	ShedNoRetryAfter int `json:"shed_no_retry_after"`
	// Failed5xx counts non-shed 5xx answers (server faults).
	Failed5xx int `json:"failed_5xx"`
	// FailedOther counts 4xx answers and transport errors.
	FailedOther int `json:"failed_other"`
}

// Lost is the count of writes neither acknowledged nor politely shed.
func (w WriteAccounting) Lost() int { return w.Failed5xx + w.FailedOther }

// ReadAccounting is the harness-side outcome tally for read requests.
type ReadAccounting struct {
	Sent      int `json:"sent"`
	OK        int `json:"ok"`
	Shed      int `json:"shed"`
	Failed5xx int `json:"failed_5xx"`
	Failed    int `json:"failed"`
}

// Report is one load run's LOAD_*.json trajectory point.
type Report struct {
	Schema   string `json:"schema"`
	Date     string `json:"date"`
	Commit   string `json:"commit,omitempty"`
	Target   string `json:"target"`
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`

	// Host metadata, recorded for the same reason the bench trajectory
	// records it: shared CI hardware changes shape run to run, and a
	// quantile delta means nothing without knowing whether the floor
	// moved.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`

	DurationSec float64 `json:"duration_sec"`
	Requests    int     `json:"requests"`

	Writes WriteAccounting `json:"writes"`
	Reads  ReadAccounting  `json:"reads"`

	Endpoints []EndpointReport `json:"endpoints"`

	// EngineDroppedEvents is the run's delta of the queue's silent
	// drop-oldest counter: data loss admission control failed to prevent.
	EngineDroppedEvents float64 `json:"engine_dropped_events"`

	// ScrapeErrors counts collector polls that failed mid-run.
	ScrapeErrors int `json:"scrape_errors"`

	SLO *SLOResult `json:"slo,omitempty"`
}

// Budget is the SLO the CI gate enforces. Zero values skip the
// respective latency check; the loss/5xx budgets are absolute counts
// (their useful value is 0).
type Budget struct {
	// P99StatusReadMs bounds the p99 of "GET /api/status" (0 = skip).
	P99StatusReadMs float64 `json:"p99_status_read_ms"`
	// MaxLost bounds writes lost without a 429/503 answer.
	MaxLost int `json:"max_lost"`
	// Max5xx bounds non-shed 5xx answers across reads and writes.
	Max5xx int `json:"max_5xx"`
}

// SLOResult is the applied budget plus its verdict, embedded in the
// report so a committed trajectory point carries the rule it was
// judged by.
type SLOResult struct {
	Budget     Budget   `json:"budget"`
	Violations []string `json:"violations"`
	Pass       bool     `json:"pass"`
}

// StatusEndpoint is the mux pattern the status-read SLO anchors on.
const StatusEndpoint = "GET /api/status"

// Evaluate applies the budget and records the verdict on the report.
// An empty violation list means the gate passes.
func Evaluate(r *Report, b Budget) SLOResult {
	var v []string
	if b.P99StatusReadMs > 0 {
		ep, ok := r.Endpoint(StatusEndpoint)
		switch {
		case !ok || ep.Count == 0:
			v = append(v, fmt.Sprintf("no %q samples in the run: the status-read SLO was not measured", StatusEndpoint))
		case ep.P99Ms > b.P99StatusReadMs:
			v = append(v, fmt.Sprintf("p99 status read %.2fms exceeds budget %.2fms", ep.P99Ms, b.P99StatusReadMs))
		}
	}
	if lost := r.Writes.Lost(); lost > b.MaxLost {
		v = append(v, fmt.Sprintf("%d writes lost without a 429/503 answer (budget %d): %d failed 5xx, %d failed otherwise",
			lost, b.MaxLost, r.Writes.Failed5xx, r.Writes.FailedOther))
	}
	if r.Writes.ShedNoRetryAfter > 0 {
		v = append(v, fmt.Sprintf("%d shed writes answered without Retry-After", r.Writes.ShedNoRetryAfter))
	}
	if fivexx := r.Writes.Failed5xx + r.Reads.Failed5xx; fivexx > b.Max5xx {
		v = append(v, fmt.Sprintf("%d non-shed 5xx responses (budget %d)", fivexx, b.Max5xx))
	}
	if r.EngineDroppedEvents > 0 {
		v = append(v, fmt.Sprintf("%.0f events silently dropped by the queue despite admission control", r.EngineDroppedEvents))
	}
	res := SLOResult{Budget: b, Violations: v, Pass: len(v) == 0}
	r.SLO = &res
	return res
}

// Endpoint finds one endpoint's row.
func (r *Report) Endpoint(name string) (EndpointReport, bool) {
	for _, ep := range r.Endpoints {
		if ep.Endpoint == name {
			return ep, true
		}
	}
	return EndpointReport{}, false
}

// Validate checks the invariants the trajectory tooling relies on:
// schema tag, sorted endpoint rows, ordered quantiles, sane counts.
func (r *Report) Validate() error {
	if r.Schema != SchemaLoad {
		return fmt.Errorf("load: schema %q, want %q", r.Schema, SchemaLoad)
	}
	if r.Date == "" || r.Target == "" || r.Scenario == "" {
		return fmt.Errorf("load: date, target and scenario are required")
	}
	if !sort.SliceIsSorted(r.Endpoints, func(i, j int) bool {
		return r.Endpoints[i].Endpoint < r.Endpoints[j].Endpoint
	}) {
		return fmt.Errorf("load: endpoint rows not sorted")
	}
	for _, ep := range r.Endpoints {
		if ep.P50Ms > ep.P99Ms || ep.P99Ms > ep.P999Ms {
			return fmt.Errorf("load: %s quantiles out of order (p50 %.3f, p99 %.3f, p999 %.3f)",
				ep.Endpoint, ep.P50Ms, ep.P99Ms, ep.P999Ms)
		}
		if ep.Count < 0 || ep.Err4xx < 0 || ep.Err5xx < 0 {
			return fmt.Errorf("load: %s has negative counters", ep.Endpoint)
		}
	}
	return nil
}

// WriteJSON emits the canonical JSON encoding (indented, sorted keys
// per struct order, trailing newline). Canonical matters: the
// round-trip contract is byte equality.
func (r *Report) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// ReadReport parses and validates a LOAD_*.json stream.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("load: parse report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
