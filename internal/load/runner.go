package load

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"memex/internal/client"
)

// Options binds a scenario to a concrete target: the server URL, the
// page/query universes the schedule indices resolve against, and the
// collector cadence.
type Options struct {
	// Target is the server base URL, e.g. "http://localhost:8600".
	Target string
	// URLs is the page universe; must cover the scenario's Pages.
	URLs []string
	// Queries is the search-term universe; must cover Queries.
	Queries []string
	// Seed drives the schedule expansion.
	Seed int64
	// HTTPClient overrides the transport (tests, timeouts).
	HTTPClient *http.Client
	// ScrapeEvery is the collector's /metrics poll cadence while traffic
	// runs (default 500ms). The final scrape after traffic stops is what
	// the report reads; the in-flight polls exist to prove the scrape
	// path holds up under load (and run under -race in CI).
	ScrapeEvery time.Duration
	// ScrapeOut, when set, receives the raw final /metrics text — the
	// triage artifact CI uploads when the gate fails.
	ScrapeOut io.Writer
	// Commit is recorded in the report (trajectory metadata).
	Commit string
}

// accounting tallies harness-side request outcomes under one mutex;
// request rates here are far below contention territory.
type accounting struct {
	mu     sync.Mutex
	writes WriteAccounting
	reads  ReadAccounting
}

// outcome is the failure class of one request, derived from the typed
// client error: a 429/503 carrying Retry-After is a polite shed; one
// without the header, a non-shed 5xx, any other 4xx, and every
// transport error are the classes the SLO budgets bound.
type outcome int

const (
	outOK outcome = iota
	outShed
	outShedNoRetryAfter
	out5xx
	outOther
)

func classifyErr(err error) outcome {
	if err == nil {
		return outOK
	}
	var ae *client.APIError
	if !errors.As(err, &ae) {
		return outOther
	}
	switch {
	case ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable:
		if ae.RetryAfter != "" {
			return outShed
		}
		return outShedNoRetryAfter
	case ae.Status >= 500:
		return out5xx
	default:
		return outOther
	}
}

func (a *accounting) classify(isWrite bool, err error) {
	o := classifyErr(err)
	a.mu.Lock()
	defer a.mu.Unlock()
	if isWrite {
		a.writes.Sent++
		switch o {
		case outOK:
			a.writes.OK++
		case outShed:
			a.writes.Shed++
		case outShedNoRetryAfter:
			a.writes.ShedNoRetryAfter++
		case out5xx:
			a.writes.Failed5xx++
		default:
			a.writes.FailedOther++
		}
	} else {
		a.reads.Sent++
		switch o {
		case outOK:
			a.reads.OK++
		case outShed, outShedNoRetryAfter:
			a.reads.Shed++
		case out5xx:
			a.reads.Failed5xx++
		default:
			a.reads.Failed++
		}
	}
}

// Run expands the scenario, replays it against the target with one
// goroutine per client, and distills the /metrics delta into a Report.
// The report carries no SLO verdict; apply Evaluate with a Budget.
func Run(sc Scenario, opt Options) (*Report, error) {
	if len(opt.URLs) < sc.Pages {
		return nil, fmt.Errorf("load: %d URLs for a %d-page scenario", len(opt.URLs), sc.Pages)
	}
	if len(opt.Queries) < sc.Queries {
		return nil, fmt.Errorf("load: %d queries for a %d-query scenario", len(opt.Queries), sc.Queries)
	}
	if opt.ScrapeEvery <= 0 {
		opt.ScrapeEvery = 500 * time.Millisecond
	}
	cl := client.New(opt.Target)
	if opt.HTTPClient != nil {
		cl = cl.WithHTTPClient(opt.HTTPClient)
	}

	// Setup phase, outside the measured window: health check, user
	// registration, baseline scrape.
	if _, err := cl.Status(); err != nil {
		return nil, fmt.Errorf("load: target %s unreachable: %w", opt.Target, err)
	}
	for _, id := range sc.Users() {
		if err := cl.Register(id, fmt.Sprintf("load-%d", id)); err != nil {
			return nil, fmt.Errorf("load: register user %d: %w", id, err)
		}
	}
	baseText, err := cl.Metrics()
	if err != nil {
		return nil, fmt.Errorf("load: baseline scrape: %w", err)
	}
	base, err := ParseMetrics(strings.NewReader(baseText))
	if err != nil {
		return nil, fmt.Errorf("load: baseline scrape: %w", err)
	}

	schedule := sc.Schedule(opt.Seed)
	byClient := map[string][]Request{}
	for _, r := range schedule {
		byClient[r.Client] = append(byClient[r.Client], r)
	}
	names := make([]string, 0, len(byClient))
	for n := range byClient {
		names = append(names, n)
	}
	sort.Strings(names)

	// Collector: poll /metrics concurrently with the traffic. Failed
	// polls are counted, not fatal — a scrape path that folds under load
	// is exactly what the report should say.
	var scrapeErrs int
	var scrapeMu sync.Mutex
	stop := make(chan struct{})
	var collectorDone sync.WaitGroup
	collectorDone.Add(1)
	go func() {
		defer collectorDone.Done()
		tick := time.NewTicker(opt.ScrapeEvery)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if _, err := cl.Metrics(); err != nil {
					scrapeMu.Lock()
					scrapeErrs++
					scrapeMu.Unlock()
				}
			}
		}
	}()

	acct := &accounting{}
	start := time.Now()
	var wg sync.WaitGroup
	for _, name := range names {
		reqs := byClient[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, r := range reqs {
				if d := time.Until(start.Add(r.At)); d > 0 {
					time.Sleep(d)
				}
				switch r.Kind {
				case Visit:
					ref := ""
					if r.Ref >= 0 {
						ref = opt.URLs[r.Ref]
					}
					err := cl.Visit(r.User, opt.URLs[r.Page], ref, time.Now(), "community")
					acct.classify(true, err)
				case Search:
					_, err := cl.Search(r.User, opt.Queries[r.Query], 10)
					acct.classify(false, err)
				case StatusRead:
					_, err := cl.Status()
					acct.classify(false, err)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(stop)
	collectorDone.Wait()

	finalText, err := cl.Metrics()
	if err != nil {
		return nil, fmt.Errorf("load: final scrape: %w", err)
	}
	if opt.ScrapeOut != nil {
		if _, err := io.WriteString(opt.ScrapeOut, finalText); err != nil {
			return nil, fmt.Errorf("load: write scrape: %w", err)
		}
	}
	final, err := ParseMetrics(strings.NewReader(finalText))
	if err != nil {
		return nil, fmt.Errorf("load: final scrape: %w", err)
	}

	rep := &Report{
		Schema:      SchemaLoad,
		Date:        time.Now().UTC().Format("2006-01-02"),
		Commit:      opt.Commit,
		Target:      opt.Target,
		Scenario:    sc.Name,
		Seed:        opt.Seed,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		DurationSec: wall.Seconds(),
		Requests:    len(schedule),
		Writes:      acct.writes,
		Reads:       acct.reads,
		Endpoints:   endpointDeltas(base, final),
	}
	scrapeMu.Lock()
	rep.ScrapeErrors = scrapeErrs
	scrapeMu.Unlock()
	prevDropped, _ := base.Value("memex_engine_events_dropped_total", nil)
	nowDropped, _ := final.Value("memex_engine_events_dropped_total", nil)
	rep.EngineDroppedEvents = nowDropped - prevDropped
	return rep, nil
}

// endpointDeltas builds the per-endpoint rows from the run's counter
// and bucket deltas. Endpoints with no traffic during the run are
// omitted (a long-lived target carries history the run didn't make).
func endpointDeltas(base, final *Scrape) []EndpointReport {
	const (
		durFam = "memex_http_request_duration_seconds"
		reqFam = "memex_http_requests_total"
		errFam = "memex_http_errors_total"
		rejFam = "memex_http_rejected_total"
	)
	var out []EndpointReport
	for _, ep := range final.LabelValues(reqFam, "endpoint") {
		l := map[string]string{"endpoint": ep}
		reqNow, _ := final.Value(reqFam, l)
		reqBase, _ := base.Value(reqFam, l)
		row := EndpointReport{Endpoint: ep, Count: reqNow - reqBase}
		if row.Count <= 0 {
			continue
		}
		if hNow, ok := final.Histogram(durFam, l); ok {
			var h Histogram
			if hBase, ok := base.Histogram(durFam, l); ok {
				h = hNow.Sub(hBase)
			} else {
				h = hNow
			}
			row.P50Ms = h.Quantile(0.50) * 1000
			row.P99Ms = h.Quantile(0.99) * 1000
			row.P999Ms = h.Quantile(0.999) * 1000
		}
		errDelta := func(class string) float64 {
			now, _ := final.Value(errFam, map[string]string{"endpoint": ep, "class": class})
			was, _ := base.Value(errFam, map[string]string{"endpoint": ep, "class": class})
			return now - was
		}
		row.Err4xx = errDelta("4xx")
		row.Err5xx = errDelta("5xx")
		for _, reason := range []string{"rate", "inflight", "queue", "foldlag"} {
			now, _ := final.Value(rejFam, map[string]string{"endpoint": ep, "reason": reason})
			was, _ := base.Value(rejFam, map[string]string{"endpoint": ep, "reason": reason})
			if d := now - was; d > 0 {
				if row.Rejected == nil {
					row.Rejected = map[string]float64{}
				}
				row.Rejected[reason] = d
			}
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}
