// Package load is the synthetic workload harness that turns the
// ROADMAP's "production scale" slogan into a measured SLO: it drives a
// live memexd over the real HTTP client with traffic modeled on "Access
// Patterns for Robots and Humans in Web Archives" (PAPERS.md), and
// reads the verdict straight out of the server's own /metrics
// histograms.
//
// # Scenario format
//
// A Scenario is a deterministic population of clients replayed against
// one target:
//
//   - Humans are browsing sessions: each issues a request, thinks for
//     an exponentially distributed pause (mean HumanThink), and repeats
//     until the scenario Duration elapses. Page choice is Zipfian
//     (rand.Zipf with ZipfS/ZipfV over the page universe, index 0 most
//     popular), successive visits carry the previous page as referrer
//     (trail evidence), and a HumanSearchFrac slice of actions are
//     ranked-search reads instead of visit writes.
//   - Robots are bursty crawlers: RobotBurst sequential page visits
//     RobotGap apart, then RobotIdle of silence, repeated. Sequential —
//     not Zipfian — because archive robots walk the namespace; this is
//     what makes them pathological for caches tuned to humans.
//   - The monitor is a dashboard stand-in polling GET /api/status every
//     MonitorEvery; its samples anchor the p99 status-read SLO.
//
// Schedule(seed) expands a Scenario into a flat, sorted request list.
// The expansion is pure: same scenario + same seed = byte-identical
// schedule (the CI determinism gate), independent of wall clock, host,
// or prior runs. Pinned scenarios live in Lookup; "ci-small" is the one
// the CI slo job replays on every push.
//
// # SLO budgets
//
// Run executes the schedule with one goroutine per client, scrapes
// /metrics before, during (the collector polls concurrently with the
// traffic), and after, and distills a Report: per-endpoint p50/p99/p999
// estimated from the cumulative `le` bucket deltas (quantile
// interpolation in promparse.go), error/rejection deltas, and
// harness-side write/read accounting. Evaluate applies a Budget:
//
//   - P99StatusReadMs: the p99 of "GET /api/status" over the run must
//     stay under budget (0 skips the check; a run with zero status
//     samples fails it — an unmeasured SLO is a violated SLO).
//   - MaxLost: writes not answered 2xx and not politely shed with
//     429/503 are lost; the default CI budget is zero.
//   - Max5xx: 5xx responses that are not admission sheds (no
//     Retry-After) are server faults; default budget zero.
//   - Any shed missing its Retry-After header is always a violation:
//     backpressure the client cannot obey is not backpressure.
//
// # Reproducing the CI slo job locally
//
//	go build -o /tmp/memexd ./cmd/memexd
//	/tmp/memexd -addr :8600 -dir /tmp/memex-slo -seed 7 -rate 50 -inflight 128 &
//	go run ./cmd/memexload -target http://localhost:8600 -scenario ci-small \
//	    -seed 1 -world-seed 7 -slo-p99-status 750ms -out LOAD_local.json
//
// memexload exits 1 on budget violations and writes the same
// LOAD_<date>_<sha>.json trajectory point CI commits on main pushes;
// `go run ./cmd/benchjson -load < LOAD_local.json` round-trips it
// through the trajectory tooling. `-print-schedule` dumps the expanded
// schedule without touching the server (run it twice to see the
// determinism contract hold).
package load
