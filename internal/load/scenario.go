package load

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Kind is the request type a schedule entry drives.
type Kind int

const (
	// Visit posts one page-view event (POST /api/event) — the write
	// path, subject to rate limiting and backpressure shedding.
	Visit Kind = iota + 1
	// Search runs a ranked full-text query (GET /api/search) — the
	// human read path.
	Search
	// StatusRead polls GET /api/status — the ops read whose p99 the CI
	// SLO gate budgets.
	StatusRead
)

func (k Kind) String() string {
	switch k {
	case Visit:
		return "visit"
	case Search:
		return "search"
	case StatusRead:
		return "status"
	}
	return "unknown"
}

// Request is one scheduled call: who issues it, when (offset from
// scenario start), and against what. Pages and queries are indices into
// the universe the runner is given, so a schedule is comparable and
// printable without binding to concrete URLs.
type Request struct {
	At     time.Duration
	Client string
	Kind   Kind
	User   int64
	// Page indexes the URL universe (Visit only).
	Page int
	// Ref is the referrer's URL index, -1 when the visit opens a session.
	Ref int
	// Query indexes the query universe (Search only).
	Query int
}

// Scenario describes one client population. All knobs are plain data so
// a scenario pins exactly (the CI schedule is a function of this struct
// and a seed, nothing else).
type Scenario struct {
	Name     string
	Duration time.Duration

	// Humans: session count, mean think time between actions, and the
	// fraction of actions that are searches instead of visits.
	Humans          int
	HumanThink      time.Duration
	HumanSearchFrac float64

	// Robots: crawler count, visits per burst, gap between requests
	// inside a burst, idle pause between bursts.
	Robots     int
	RobotBurst int
	RobotGap   time.Duration
	RobotIdle  time.Duration

	// MonitorEvery is the status-read cadence (0 disables the monitor —
	// and with it the p99 status-read SLO anchor).
	MonitorEvery time.Duration

	// Pages/Queries size the universes the indices draw from.
	Pages   int
	Queries int

	// ZipfS/ZipfV shape human page popularity (rand.Zipf; S>1, V>=1).
	ZipfS float64
	ZipfV float64
}

// Lookup returns a pinned scenario by name. These are part of the CI
// contract: changing "ci-small" changes what every future SLO point
// measures, so treat edits like benchmark renames.
func Lookup(name string) (Scenario, bool) {
	switch name {
	case "ci-small":
		// Small enough to finish inside a CI minute, mixed enough to
		// exercise every admission path: ~200 human actions, ~2 robot
		// burst cycles each, a 6–7 Hz monitor.
		return Scenario{
			Name:            "ci-small",
			Duration:        10 * time.Second,
			Humans:          8,
			HumanThink:      400 * time.Millisecond,
			HumanSearchFrac: 0.25,
			Robots:          2,
			RobotBurst:      25,
			RobotGap:        5 * time.Millisecond,
			RobotIdle:       2 * time.Second,
			MonitorEvery:    150 * time.Millisecond,
			Pages:           120,
			Queries:         12,
			ZipfS:           1.3,
			ZipfV:           1,
		}, true
	case "unit":
		// Sub-two-second population for the harness's own tests.
		return Scenario{
			Name:            "unit",
			Duration:        1200 * time.Millisecond,
			Humans:          3,
			HumanThink:      120 * time.Millisecond,
			HumanSearchFrac: 0.3,
			Robots:          1,
			RobotBurst:      10,
			RobotGap:        4 * time.Millisecond,
			RobotIdle:       400 * time.Millisecond,
			MonitorEvery:    60 * time.Millisecond,
			Pages:           30,
			Queries:         4,
			ZipfS:           1.3,
			ZipfV:           1,
		}, true
	}
	return Scenario{}, false
}

// HumanUser returns the user id of human session i (1-based ids so the
// server's "user required" validation is never tripped by a zero).
func (sc Scenario) HumanUser(i int) int64 { return int64(i) + 1 }

// RobotUser returns the user id of robot r, disjoint from every human.
func (sc Scenario) RobotUser(r int) int64 { return int64(sc.Humans) + int64(r) + 1 }

// Users lists every user id the scenario sends traffic as, in schedule
// order; the runner registers them before the clock starts.
func (sc Scenario) Users() []int64 {
	ids := make([]int64, 0, sc.Humans+sc.Robots)
	for i := 0; i < sc.Humans; i++ {
		ids = append(ids, sc.HumanUser(i))
	}
	for r := 0; r < sc.Robots; r++ {
		ids = append(ids, sc.RobotUser(r))
	}
	return ids
}

// Schedule expands the scenario into its flat request list, sorted by
// offset. The expansion is pure and deterministic: every random draw
// comes from per-client rand sources derived from seed, so the same
// (scenario, seed) pair yields an identical schedule on any host, any
// run — the property the CI determinism gate asserts.
func (sc Scenario) Schedule(seed int64) []Request {
	var reqs []Request

	// Per-client sub-seeds keep each client's stream independent of how
	// many other clients exist, which keeps small scenario edits from
	// reshuffling everything (and keeps debugging sane).
	sub := func(i int64) *rand.Rand { return rand.New(rand.NewSource(seed*1_000_003 + i)) }

	for i := 0; i < sc.Humans; i++ {
		rng := sub(int64(i))
		zipf := rand.NewZipf(rng, sc.ZipfS, sc.ZipfV, uint64(sc.Pages-1))
		name := fmt.Sprintf("human-%d", i)
		user := sc.HumanUser(i)
		// Stagger session starts across one think time so the population
		// doesn't arrive as a thundering herd at t=0.
		t := time.Duration(rng.Int63n(int64(sc.HumanThink) + 1))
		ref := -1
		for t < sc.Duration {
			if rng.Float64() < sc.HumanSearchFrac {
				reqs = append(reqs, Request{
					At: t, Client: name, Kind: Search, User: user,
					Page: -1, Ref: -1, Query: int(zipf.Uint64()) % sc.Queries,
				})
			} else {
				page := int(zipf.Uint64())
				reqs = append(reqs, Request{
					At: t, Client: name, Kind: Visit, User: user,
					Page: page, Ref: ref, Query: -1,
				})
				ref = page
			}
			t += time.Duration(rng.ExpFloat64() * float64(sc.HumanThink))
		}
	}

	for r := 0; r < sc.Robots; r++ {
		rng := sub(int64(sc.Humans) + int64(r))
		name := fmt.Sprintf("robot-%d", r)
		user := sc.RobotUser(r)
		// Each robot starts its crawl at a random namespace offset and
		// walks sequentially — the archive-robot signature.
		cursor := rng.Intn(sc.Pages)
		t := time.Duration(rng.Int63n(int64(sc.RobotIdle)/2 + 1))
		for t < sc.Duration {
			ref := -1
			for b := 0; b < sc.RobotBurst && t < sc.Duration; b++ {
				reqs = append(reqs, Request{
					At: t, Client: name, Kind: Visit, User: user,
					Page: cursor, Ref: ref, Query: -1,
				})
				ref = cursor
				cursor = (cursor + 1) % sc.Pages
				t += sc.RobotGap
			}
			t += sc.RobotIdle
		}
	}

	if sc.MonitorEvery > 0 {
		for t := sc.MonitorEvery; t < sc.Duration; t += sc.MonitorEvery {
			reqs = append(reqs, Request{
				At: t, Client: "monitor", Kind: StatusRead,
				Page: -1, Ref: -1, Query: -1,
			})
		}
	}

	// Stable sort keyed (At, Client): each client's own stream is already
	// ordered, so the merged schedule is fully deterministic.
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].At != reqs[j].At {
			return reqs[i].At < reqs[j].At
		}
		return reqs[i].Client < reqs[j].Client
	})
	return reqs
}

// FormatSchedule renders a schedule one request per line, the form the
// determinism check diffs (`memexload -print-schedule`).
func FormatSchedule(w io.Writer, reqs []Request) {
	for _, r := range reqs {
		switch r.Kind {
		case Visit:
			fmt.Fprintf(w, "%v %s visit user=%d page=%d ref=%d\n", r.At, r.Client, r.User, r.Page, r.Ref)
		case Search:
			fmt.Fprintf(w, "%v %s search user=%d query=%d\n", r.At, r.Client, r.User, r.Query)
		case StatusRead:
			fmt.Fprintf(w, "%v %s status\n", r.At, r.Client)
		}
	}
}
