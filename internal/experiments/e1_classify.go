package experiments

import (
	"fmt"
	"sort"
	"time"

	"memex/internal/classify"
	"memex/internal/sim"
	"memex/internal/webcorpus"
)

// E1 regenerates the paper's headline mining claim (§4, Figure 1): on
// bookmarked pages — many of them sparse "front pages" — a text-only
// Bayesian classifier manages roughly 40% accuracy, while the new Memex
// model combining text, hyperlink and folder-placement evidence reaches
// roughly 80%. We ablate all four combinations.
func E1(seed int64) *Report {
	start := time.Now()
	// A front-page-heavy corpus: the paper's observation is that people
	// bookmark graphics-heavy front pages with little topical text, which
	// is what collapses the text-only learner.
	corpus := webcorpus.Generate(webcorpus.Config{
		Seed: seed, TopTopics: 8, SubPerTopic: 6, PagesPerLeaf: 30,
		FrontPageFrac: 0.7, FrontWords: 9, FrontTopicMix: 0.09,
	})
	trace := sim.Simulate(corpus, sim.Config{
		Seed: seed + 1, Users: 60, Days: 25, BookmarkProb: 0.3,
	})

	// The labelled set: bookmarked pages; ground truth is the corpus leaf
	// topic; training labels come from an 80/20 page-level split.
	type mark struct {
		page   int64
		user   int64
		folder string
	}
	seen := map[int64]mark{}
	for _, b := range trace.Bookmarks {
		if _, ok := seen[b.Page]; !ok {
			seen[b.Page] = mark{b.Page, b.User, fmt.Sprintf("u%d:%s", b.User, b.Folder)}
		}
	}
	var pages []mark
	for _, m := range seen {
		pages = append(pages, m)
	}
	// Deterministic order, then split.
	sort.Slice(pages, func(i, j int) bool { return pages[i].page < pages[j].page })

	truth := map[int64]string{}
	docs := make([]classify.Doc, 0, len(pages))
	trainer := classify.NewTrainer(nil)
	testTruth := map[int64]string{}
	for i, m := range pages {
		p := corpus.Page(m.page)
		label := corpus.TopicPath(p.Topic)
		truth[m.page] = label
		d := classify.Doc{
			ID:     m.page,
			TF:     termCounts(p),
			Folder: m.folder,
		}
		// Link neighbourhood within the labelled set.
		for _, l := range p.Links {
			if _, ok := seen[l]; ok {
				d.Neighbors = append(d.Neighbors, l)
			}
		}
		if i%5 != 4 { // 80% train
			d.Label = label
			trainer.AddCounts(label, d.TF)
		} else {
			testTruth[m.page] = label
		}
		docs = append(docs, d)
	}
	model, err := trainer.Train(classify.Options{})
	if err != nil {
		return &Report{ID: "E1", Title: "classification", Finding: "insufficient data: " + err.Error()}
	}

	run := func(links, folderEv bool) float64 {
		ht := classify.NewHypertext(model, classify.HypertextOptions{
			DisableLinks:   !links,
			DisableFolders: !folderEv,
		})
		pred := ht.ClassifyGraph(docs)
		return classify.Accuracy(pred, testTruth)
	}
	textOnly := run(false, false)
	withLinks := run(true, false)
	withFolders := run(false, true)
	full := run(true, true)

	r := &Report{
		ID:     "E1",
		Title:  "Bookmark classification: text-only vs text+link+folder (§4, Fig 1)",
		Claim:  "text-only ≈40% accuracy; full Memex model ≈80%",
		Header: []string{"model", "accuracy", "test pages"},
		Rows: [][]string{
			{"text only (naive Bayes)", fmtPct(textOnly), fmt.Sprint(len(testTruth))},
			{"text + hyperlinks", fmtPct(withLinks), fmt.Sprint(len(testTruth))},
			{"text + folder placement", fmtPct(withFolders), fmt.Sprint(len(testTruth))},
			{"full (text+link+folder)", fmtPct(full), fmt.Sprint(len(testTruth))},
		},
		Metrics: map[string]float64{
			"acc_text": textOnly, "acc_link": withLinks,
			"acc_folder": withFolders, "acc_full": full,
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf(
		"full model %.0f%% vs text-only %.0f%% — evidence combination lifts accuracy ×%.1f (paper: 40%%→80%%, ×2.0)",
		100*full, 100*textOnly, full/maxF(textOnly, 1e-9))
	return r
}

func termCounts(p *webcorpus.Page) map[string]int {
	tf := map[string]int{}
	for _, w := range splitFields(p.Text) {
		tf[w]++
	}
	return tf
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
