package experiments

import (
	"testing"
	"time"
)

// TestE1ReproducesPaperShape asserts the headline claim's shape: text-only
// lands in the paper's weak band and the full model roughly doubles it.
func TestE1ReproducesPaperShape(t *testing.T) {
	r := E1(7)
	text := r.Metrics["acc_text"]
	full := r.Metrics["acc_full"]
	if text < 0.25 || text > 0.60 {
		t.Fatalf("text-only accuracy %.3f outside the paper's weak band", text)
	}
	if full < 0.70 {
		t.Fatalf("full model accuracy %.3f below the paper's band", full)
	}
	if full < 1.5*text {
		t.Fatalf("lift %.2f× too small (paper: ≈2×)", full/text)
	}
}

func TestE2PrecisionAndLatency(t *testing.T) {
	r := E2(7)
	if r.Metrics["precision"] < 0.75 {
		t.Fatalf("trail replay precision %.3f too low", r.Metrics["precision"])
	}
	if r.Metrics["latency_ms"] > 100 {
		t.Fatalf("replay latency %.1fms too high", r.Metrics["latency_ms"])
	}
}

func TestE3ForegroundFastAndAsync(t *testing.T) {
	r := E3(7)
	if r.Metrics["ack_p99_us"] > 50000 {
		t.Fatalf("foreground ack p99 %.0fµs: not 'guaranteed immediate'", r.Metrics["ack_p99_us"])
	}
	if r.Metrics["fg_events_per_s"] < 1000 {
		t.Fatalf("foreground throughput %.0f ev/s too low", r.Metrics["fg_events_per_s"])
	}
}

func TestE4CommunityBeatsCoarseAndUsesNodes(t *testing.T) {
	r := E4(7)
	if r.Metrics["fit_community"] <= r.Metrics["fit_coarse"] {
		t.Fatalf("community fit %.3f not above coarse %.3f",
			r.Metrics["fit_community"], r.Metrics["fit_coarse"])
	}
	if r.Metrics["used_community"] < 0.8 {
		t.Fatalf("community node usage %.2f too low", r.Metrics["used_community"])
	}
	if r.Metrics["used_fine"] > 0.7 {
		t.Fatalf("fine-tree usage %.2f too high: experiment regime lost its skew", r.Metrics["used_fine"])
	}
}

func TestE5RDBMSOverheadOverwhelming(t *testing.T) {
	r := E5(7)
	if r.Metrics["disk_ratio"] < 4 {
		t.Fatalf("disk overhead ×%.1f not 'overwhelming'", r.Metrics["disk_ratio"])
	}
	if r.Metrics["ingest_ratio"] < 2 {
		t.Fatalf("ingest overhead ×%.1f not significant", r.Metrics["ingest_ratio"])
	}
}

func TestE6FocusedWins(t *testing.T) {
	r := E6(7)
	if r.Metrics["harvest_focused"] < 1.5*r.Metrics["harvest_bfs"] {
		t.Fatalf("focused %.3f vs bfs %.3f: no clear win",
			r.Metrics["harvest_focused"], r.Metrics["harvest_bfs"])
	}
}

func TestE7ProfilesSuperior(t *testing.T) {
	r := E7(7)
	if r.Metrics["peer_profile"] <= r.Metrics["peer_url"] {
		t.Fatalf("profile peer alignment %.3f not above URL %.3f",
			r.Metrics["peer_profile"], r.Metrics["peer_url"])
	}
	if r.Metrics["ontopic_profile"] <= r.Metrics["ontopic_url"] {
		t.Fatalf("profile on-interest %.3f not above URL %.3f",
			r.Metrics["ontopic_profile"], r.Metrics["ontopic_url"])
	}
}

func TestE8SearchServiceable(t *testing.T) {
	r := E8(7)
	if r.Metrics["qps_bm25"] < 500 {
		t.Fatalf("search throughput %.0f q/s too low", r.Metrics["qps_bm25"])
	}
}

func TestE9NoViolationsAndProducerWins(t *testing.T) {
	r := E9(7)
	if r.Metrics["violations"] != 0 {
		t.Fatalf("%v consistency violations", r.Metrics["violations"])
	}
	if r.Metrics["pub_versioned"] <= r.Metrics["pub_mutex"] {
		t.Fatalf("versioned producer %.0f/s not above mutex %.0f/s",
			r.Metrics["pub_versioned"], r.Metrics["pub_mutex"])
	}
}

func TestE10Improves(t *testing.T) {
	r := E10(7)
	if r.Metrics["final_accuracy"] < 0.8 {
		t.Fatalf("final accuracy %.3f after corrections too low", r.Metrics["final_accuracy"])
	}
}

func TestByIDAndAll(t *testing.T) {
	if ByID("nope", 1) != nil {
		t.Fatal("unknown id returned a report")
	}
	if r := ByID("e1", 7); r == nil || r.ID != "E1" {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestReportPrintDoesNotPanic(t *testing.T) {
	r := &Report{
		ID: "X", Title: "t", Claim: "c", Finding: "f",
		Header:  []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"longer", "row"}},
		Elapsed: time.Second,
	}
	r.Print()
}
