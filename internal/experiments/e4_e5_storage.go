package experiments

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"memex/internal/kvstore"
	"memex/internal/rdbms"
	"memex/internal/sim"
	"memex/internal/text"
	"memex/internal/themes"
	"memex/internal/webcorpus"
)

// E4 regenerates Figure 4: the community taxonomy refines where the
// community is deep and coarsens where it is shallow, fitting the
// community's documents better than a fixed universal taxonomy.
func E4(seed int64) *Report {
	start := time.Now()
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, TopTopics: 8, SubPerTopic: 6, PagesPerLeaf: 30})
	// Heavily skewed community: nearly all interest mass on a few hot
	// topics, so most of a universal directory covers topics nobody here
	// reads.
	trace := sim.Simulate(corpus, sim.Config{
		Seed: seed + 1, Users: 80, Days: 25,
		CommunityFocus: 0.95, HotTopics: 5, InterestTopics: 3,
		BookmarkProb: 0.25,
	})

	dict := text.NewDict()
	corp := text.NewCorpus()
	raw := map[int64]text.Vector{}
	for _, p := range corpus.Pages {
		v := text.VectorFromText(dict, p.Text)
		raw[p.ID] = v
		corp.AddDoc(v)
	}
	tfidf := func(page int64) text.Vector { return corp.TFIDF(raw[page]) }

	// Community folders from the trace.
	folderDocs := map[string]*themes.UserFolder{}
	for _, b := range trace.Bookmarks {
		key := fmt.Sprintf("%d|%s", b.User, b.Folder)
		uf := folderDocs[key]
		if uf == nil {
			uf = &themes.UserFolder{User: b.User, Path: b.Folder}
			folderDocs[key] = uf
		}
		uf.Docs = append(uf.Docs, themes.DocVec{ID: b.Page, Vec: tfidf(b.Page)})
	}
	var ufs []themes.UserFolder
	for _, uf := range folderDocs {
		ufs = append(ufs, *uf)
	}
	tax := themes.Discover(ufs, dict, themes.Options{Seed: seed})
	st := tax.Stats()

	// The paper argues universal hierarchies are "neither necessary nor
	// sufficient … too specialized in most topics, and not sufficiently
	// specialized in the areas in which the community is deeply
	// interested". Two universal baselines bracket the community tree:
	//  - coarse: one theme per TOP-LEVEL topic (a shallow directory) —
	//    under-specialized where the community is deep;
	//  - fine: one theme per leaf (a full directory) — most of its nodes
	//    cover topics this community never touches.
	mkUniversal := func(leafLevel bool) *themes.Taxonomy {
		var u themes.Taxonomy
		u.DocTheme = map[int64]int{}
		if leafLevel {
			for _, leaf := range corpus.Leaves() {
				var vecs []text.Vector
				for _, pid := range corpus.LeafPages[leaf.ID] {
					vecs = append(vecs, tfidf(pid))
				}
				u.Themes = append(u.Themes, themes.Theme{
					ID: len(u.Themes), Parent: -1, Label: leaf.Path,
					Centroid: text.Centroid(vecs).Normalize(),
				})
			}
			return &u
		}
		for _, top := range corpus.Topics {
			if top.Leaf {
				continue
			}
			var vecs []text.Vector
			for _, leaf := range corpus.Leaves() {
				if leaf.Parent != top.ID {
					continue
				}
				for _, pid := range corpus.LeafPages[leaf.ID] {
					vecs = append(vecs, tfidf(pid))
				}
			}
			u.Themes = append(u.Themes, themes.Theme{
				ID: len(u.Themes), Parent: -1, Label: top.Path,
				Centroid: text.Centroid(vecs).Normalize(),
			})
		}
		return &u
	}
	coarse := mkUniversal(false)
	fine := mkUniversal(true)

	// Fit on the community's pursued documents: pages visited while the
	// session's intent matched the page's topic. Random link detours to
	// cold topics are not part of anyone's interests and would flatter the
	// universal directory.
	var commDocs []themes.DocVec
	seenPages := map[int64]bool{}
	for _, v := range trace.Visits {
		if seenPages[v.Page] || corpus.Page(v.Page).Topic != v.Topic {
			continue
		}
		seenPages[v.Page] = true
		commDocs = append(commDocs, themes.DocVec{ID: v.Page, Vec: tfidf(v.Page)})
	}
	fitCommunity := tax.Fit(commDocs)
	fitCoarse := coarse.Fit(commDocs)
	fitFine := fine.Fit(commDocs)

	// Usefulness of nodes: fraction of leaf themes that carry a material
	// share (≥1%) of the community's documents. A universal directory is
	// "too specialized in most topics" — most of its leaves sit idle for
	// this community.
	used := func(t *themes.Taxonomy) float64 {
		count := map[int]int{}
		for _, d := range commDocs {
			if id, ok := t.Assign(d.Vec); ok {
				count[id]++
			}
		}
		leaves := t.Leaves()
		if len(leaves) == 0 {
			return 0
		}
		material := 0
		threshold := len(commDocs) / 100
		if threshold < 1 {
			threshold = 1
		}
		for _, n := range count {
			if n >= threshold {
				material++
			}
		}
		return float64(material) / float64(len(leaves))
	}
	usedCommunity := used(tax)
	usedFine := used(fine)
	usedCoarse := used(coarse)

	r := &Report{
		ID:     "E4",
		Title:  "Community theme taxonomy vs universal taxonomies (Figure 4)",
		Claim:  "universal hierarchies are neither necessary nor sufficient; themes refine where needed, coarsen where possible",
		Header: []string{"measure", "community themes", "universal coarse", "universal fine"},
		Rows: [][]string{
			{"taxonomy nodes", fmt.Sprint(st.Themes), fmt.Sprint(len(coarse.Themes)), fmt.Sprint(len(fine.Themes))},
			{"folders consolidated", fmt.Sprint(st.MergedIn), "-", "-"},
			{"themes refined (split)", fmt.Sprint(st.Refined), "0", "0"},
			{"doc–taxonomy fit (mean cosine)", fmtF(fitCommunity), fmtF(fitCoarse), fmtF(fitFine)},
			{"leaf nodes used by community", fmtPct(usedCommunity), fmtPct(usedCoarse), fmtPct(usedFine)},
			{"community docs evaluated", fmt.Sprint(len(commDocs)), "", ""},
		},
		Metrics: map[string]float64{
			"fit_community":  fitCommunity,
			"fit_coarse":     fitCoarse,
			"fit_fine":       fitFine,
			"used_community": usedCommunity,
			"used_fine":      usedFine,
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf(
		"community tree: fit %.3f with %.0f%% of nodes in use — beats the coarse directory (fit %.3f) and wastes far fewer nodes than the fine one (%.0f%% used, fit %.3f)",
		fitCommunity, 100*usedCommunity, fitCoarse, 100*usedFine, fitFine)
	return r
}

// E5 regenerates the §3 architecture claim: storing term-level statistics
// in the RDBMS would have overwhelming space and time overheads compared
// with the Berkeley-DB-style store — the reason Memex splits its storage.
func E5(seed int64) *Report {
	start := time.Now()
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, TopTopics: 4, SubPerTopic: 3, PagesPerLeaf: 25})
	dict := text.NewDict()

	type stat struct {
		ingest time.Duration
		lookup time.Duration
		disk   int64
	}

	// Term stats per page.
	type pageStats struct {
		page int64
		tf   map[string]int
	}
	var all []pageStats
	for _, p := range corpus.Pages {
		all = append(all, pageStats{p.ID, text.TermCounts(p.Text)})
	}

	// (a) RDBMS: one row per (page, term) — the design the paper rejects.
	rdbmsStat := func() stat {
		dir, _ := os.MkdirTemp("", "memex-e5-rdbms")
		defer os.RemoveAll(dir)
		db, err := rdbms.Open(dir, kvstore.Options{Sync: kvstore.SyncNever})
		if err != nil {
			return stat{}
		}
		defer db.Close()
		tbl, _ := db.CreateTable(rdbms.Schema{
			Name: "termstats",
			Columns: []rdbms.Column{
				{Name: "id", Type: rdbms.TInt},
				{Name: "page", Type: rdbms.TInt},
				{Name: "term", Type: rdbms.TString},
				{Name: "count", Type: rdbms.TInt},
			},
			Key:     "id",
			Indexes: []string{"page"},
		})
		t0 := time.Now()
		id := int64(0)
		for _, ps := range all {
			for term, n := range ps.tf {
				id++
				tbl.Insert(rdbms.Row{
					"id":    rdbms.Int(id),
					"page":  rdbms.Int(ps.page),
					"term":  rdbms.String(term),
					"count": rdbms.Int(int64(n)),
				})
			}
		}
		ingest := time.Since(t0)
		db.KV().Checkpoint()
		// Lookup: reconstruct each page's stats via the index.
		t1 := time.Now()
		for _, ps := range all[:60] {
			tbl.Select().Where(rdbms.Eq("page", rdbms.Int(ps.page))).Each(func(r rdbms.Row) bool { return true })
		}
		lookup := time.Since(t1) / 60
		return stat{ingest, lookup, db.KV().DiskBytes()}
	}()

	// (b) kvstore: one packed blob per page — the Memex design.
	kvStat := func() stat {
		dir, _ := os.MkdirTemp("", "memex-e5-kv")
		defer os.RemoveAll(dir)
		store, err := kvstore.Open(dir, kvstore.Options{Sync: kvstore.SyncNever})
		if err != nil {
			return stat{}
		}
		defer store.Close()
		t0 := time.Now()
		for _, ps := range all {
			var buf []byte
			for term, n := range ps.tf {
				id := dict.ID(term)
				buf = binary.AppendUvarint(buf, uint64(id))
				buf = binary.AppendUvarint(buf, uint64(n))
			}
			key := fmt.Sprintf("tf/%016x", uint64(ps.page))
			store.Put([]byte(key), buf)
		}
		ingest := time.Since(t0)
		store.Checkpoint()
		t1 := time.Now()
		for _, ps := range all[:60] {
			key := fmt.Sprintf("tf/%016x", uint64(ps.page))
			blob, _, _ := store.Get([]byte(key))
			for len(blob) > 0 { // decode to be fair
				_, w := binary.Uvarint(blob)
				blob = blob[w:]
				_, w2 := binary.Uvarint(blob)
				blob = blob[w2:]
			}
		}
		lookup := time.Since(t1) / 60
		return stat{ingest, lookup, store.DiskBytes()}
	}()

	r := &Report{
		ID:     "E5",
		Title:  "Division of labour: term statistics in RDBMS vs lightweight store (§3)",
		Claim:  "term-level statistics in an RDBMS have overwhelming space and time overheads",
		Header: []string{"design", "ingest", "per-page lookup", "disk bytes"},
		Rows: [][]string{
			{"RDBMS rows (page,term,count)", rdbmsStat.ingest.Round(time.Millisecond).String(),
				fmtDur(rdbmsStat.lookup), fmt.Sprint(rdbmsStat.disk)},
			{"kvstore packed blobs", kvStat.ingest.Round(time.Millisecond).String(),
				fmtDur(kvStat.lookup), fmt.Sprint(kvStat.disk)},
		},
		Metrics: map[string]float64{
			"ingest_ratio": rdbmsStat.ingest.Seconds() / maxF(kvStat.ingest.Seconds(), 1e-9),
			"disk_ratio":   float64(rdbmsStat.disk) / maxF(float64(kvStat.disk), 1),
			"lookup_ratio": float64(rdbmsStat.lookup) / maxF(float64(kvStat.lookup), 1),
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf(
		"RDBMS costs ×%.1f ingest time, ×%.1f disk, ×%.1f lookup vs the lightweight store — the paper's split is justified",
		r.Metrics["ingest_ratio"], r.Metrics["disk_ratio"], r.Metrics["lookup_ratio"])
	return r
}
