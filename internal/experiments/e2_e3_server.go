package experiments

import (
	"fmt"
	"os"
	"time"

	"memex/internal/classify"
	"memex/internal/core"
	"memex/internal/events"
	"memex/internal/kvstore"
	"memex/internal/sim"
	"memex/internal/text"
	"memex/internal/trails"
	"memex/internal/webcorpus"
)

// corpusSource adapts the synthetic web to the engine.
type corpusSource struct {
	c *webcorpus.Corpus
}

// Lookup implements core.PageSource.
func (s corpusSource) Lookup(url string) (core.Content, bool) {
	id, ok := s.c.ByURL[url]
	if !ok {
		return core.Content{}, false
	}
	p := s.c.Page(id)
	links := make([]string, 0, len(p.Links))
	for _, l := range p.Links {
		links = append(links, s.c.Page(l).URL)
	}
	return core.Content{URL: p.URL, Title: p.Title, Text: p.Text, Links: links}, true
}

// E2 regenerates Figure 2: selecting a folder in the trail tab replays the
// recent topical browsing context, with membership decided by the trained
// classifier (as the real trail tab does, "pages … most likely to belong
// to the selected topic"). We measure retrieval latency and the topical
// precision of the replayed graph against ground truth.
func E2(seed int64) *Report {
	startAll := time.Now()
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, TopTopics: 4, SubPerTopic: 3, PagesPerLeaf: 30})
	trace := sim.Simulate(corpus, sim.Config{Seed: seed + 1, Users: 30, Days: 20})

	// Train the folder classifier from a handful of labelled pages per
	// leaf (the user's explicit bookmarks).
	trainer := classify.NewTrainer(nil)
	for _, leaf := range corpus.Leaves() {
		for i, pid := range corpus.LeafPages[leaf.ID] {
			if i == 6 {
				break
			}
			trainer.AddCounts(leaf.Path, text.TermCounts(corpus.Page(pid).Text))
		}
	}
	model, err := trainer.Train(classify.Options{})
	if err != nil {
		return &Report{ID: "E2", Finding: err.Error()}
	}
	// Classify every page once (the demons' cached guesses).
	guess := make(map[int64]string, len(corpus.Pages))
	for _, p := range corpus.Pages {
		got, _ := model.Classify(text.TermCounts(p.Text))
		guess[p.ID] = got
	}

	visits := make([]trails.Visit, len(trace.Visits))
	for i, v := range trace.Visits {
		visits[i] = trails.Visit{User: v.User, Page: v.Page, Referrer: v.Referrer, Time: v.Time}
	}
	now := trace.Visits[len(trace.Visits)-1].Time.Add(time.Hour)

	var rows [][]string
	var lat []time.Duration
	var precSum float64
	queries := 0
	for _, u := range trace.Users[:10] {
		for tid := range u.Interests {
			topic := tid
			path := corpus.TopicPath(topic)
			filter := trails.Filter{
				User:  0, // community-wide, as the trail tab shows
				Topic: func(p int64) bool { return guess[p] == path },
			}
			t0 := time.Now()
			tg := trails.Replay(visits, filter, 0, now, 0)
			lat = append(lat, time.Since(t0))
			if len(tg.Nodes) == 0 {
				continue
			}
			on := 0
			for _, p := range tg.Top(20) {
				if corpus.Page(p).Topic == topic {
					on++
				}
			}
			prec := float64(on) / float64(minI(20, len(tg.Nodes)))
			precSum += prec
			queries++
			if queries <= 5 {
				rows = append(rows, []string{
					path,
					fmt.Sprint(len(tg.Nodes)),
					fmt.Sprint(len(tg.Edges)),
					fmtPct(prec),
					fmtDur(lat[len(lat)-1]),
				})
			}
		}
	}
	meanPrec := precSum / float64(maxI(queries, 1))
	r := &Report{
		ID:     "E2",
		Title:  "Trail tab: topical context replay (Figure 2)",
		Claim:  "selecting a folder replays the recent community trail graph for that topic",
		Header: []string{"topic", "pages", "transitions", "precision", "latency"},
		Rows:   rows,
		Metrics: map[string]float64{
			"precision":  meanPrec,
			"latency_ms": float64(percentile(lat, 50)) / float64(time.Millisecond),
		},
		Elapsed: time.Since(startAll),
	}
	r.Rows = append(r.Rows, []string{"mean over " + fmt.Sprint(queries) + " queries", "", "",
		fmtPct(meanPrec), fmtDur(percentile(lat, 50)) + " p50"})
	r.Finding = fmt.Sprintf("replay precision %.0f%% at p50 latency %v over %d community trail queries",
		100*meanPrec, percentile(lat, 50).Round(time.Microsecond), queries)
	return r
}

// E3 regenerates the Figure 3 architecture claim (§3): UI events get
// guaranteed-immediate processing while heavyweight analysis runs behind
// the queue; the demons catch up asynchronously and shed load rather than
// block the foreground.
func E3(seed int64) *Report {
	start := time.Now()
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, TopTopics: 4, SubPerTopic: 3, PagesPerLeaf: 30})
	trace := sim.Simulate(corpus, sim.Config{Seed: seed + 1, Users: 30, Days: 10})

	dir, err := os.MkdirTemp("", "memex-e3")
	if err != nil {
		return &Report{ID: "E3", Finding: err.Error()}
	}
	defer os.RemoveAll(dir)
	eng, err := core.Open(core.Config{
		Dir:     dir,
		Source:  corpusSource{corpus},
		KV:      kvstore.Options{Sync: kvstore.SyncNever},
		Workers: 2,
	})
	if err != nil {
		return &Report{ID: "E3", Finding: err.Error()}
	}
	defer eng.Close()
	for _, u := range trace.Users {
		eng.RegisterUser(u.ID, u.Name)
	}

	// Foreground ack latency under a burst of events.
	n := minI(len(trace.Visits), 3000)
	acks := make([]time.Duration, 0, n)
	t0 := time.Now()
	for _, v := range trace.Visits[:n] {
		var ref string
		if v.Referrer != 0 {
			ref = corpus.Page(v.Referrer).URL
		}
		s := time.Now()
		eng.RecordVisit(v.User, corpus.Page(v.Page).URL, ref, v.Time, events.Community)
		acks = append(acks, time.Since(s))
	}
	ingestWall := time.Since(t0)
	// Background catch-up.
	t1 := time.Now()
	eng.DrainBackground()
	catchUp := time.Since(t1)
	st := eng.Status()

	fgRate := float64(n) / ingestWall.Seconds()
	r := &Report{
		ID:     "E3",
		Title:  "Foreground event path vs background demons (§3, Figure 3)",
		Claim:  "UI events are guaranteed immediate processing; analysis proceeds asynchronously",
		Header: []string{"measure", "value"},
		Rows: [][]string{
			{"events logged (foreground)", fmt.Sprint(n)},
			{"foreground ack p50", fmtDur(percentile(acks, 50))},
			{"foreground ack p99", fmtDur(percentile(acks, 99))},
			{"foreground throughput", fmt.Sprintf("%.0f events/s", fgRate)},
			{"background catch-up after burst", catchUp.Round(time.Millisecond).String()},
			{"pages fetched+indexed by demons", fmt.Sprint(st.PagesIndexed)},
			{"events shed under overload", fmt.Sprint(st.EventsDropped)},
		},
		Metrics: map[string]float64{
			"ack_p50_us":      float64(percentile(acks, 50)) / float64(time.Microsecond),
			"ack_p99_us":      float64(percentile(acks, 99)) / float64(time.Microsecond),
			"fg_events_per_s": fgRate,
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf(
		"foreground acks in %v p50 / %v p99 (%.0f ev/s) while demons indexed %d pages asynchronously; queue shed %d",
		percentile(acks, 50).Round(time.Microsecond), percentile(acks, 99).Round(time.Microsecond),
		fgRate, st.PagesIndexed, st.EventsDropped)
	return r
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
