package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"memex/internal/classify"
	"memex/internal/sim"
	"memex/internal/textindex"
	"memex/internal/version"
	"memex/internal/webcorpus"
)

// E8 regenerates the §2 baseline feature: "a standard full-text search
// over all pages visited" — index-build rate, query latency, and
// throughput under both ranking functions.
func E8(seed int64) *Report {
	start := time.Now()
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, TopTopics: 8, SubPerTopic: 6, PagesPerLeaf: 45})

	ix := textindex.New(nil)
	t0 := time.Now()
	for _, p := range corpus.Pages {
		ix.Add(p.ID, p.Title+" "+p.Text)
	}
	buildTime := time.Since(t0)

	// Query mix: topical vocabulary terms.
	rng := rand.New(rand.NewSource(seed))
	var queries []string
	leaves := corpus.Leaves()
	for i := 0; i < 200; i++ {
		leaf := leaves[rng.Intn(len(leaves))]
		top := corpus.Topics[leaf.Parent]
		q := fmt.Sprintf("%s_%s%02d %s_%s%02d",
			top.Name, leaf.Name, rng.Intn(10), top.Name, leaf.Name, rng.Intn(10))
		queries = append(queries, q)
	}

	bench := func(scoring textindex.Scoring) (p50, p99 time.Duration, qps float64, hits int) {
		var lat []time.Duration
		total := 0
		t0 := time.Now()
		for _, q := range queries {
			s := time.Now()
			hs := ix.Search(q, 10, scoring)
			lat = append(lat, time.Since(s))
			total += len(hs)
		}
		wall := time.Since(t0)
		return percentile(lat, 50), percentile(lat, 99),
			float64(len(queries)) / wall.Seconds(), total
	}
	p50b, p99b, qpsB, hitsB := bench(textindex.BM25)
	p50t, p99t, qpsT, _ := bench(textindex.TFIDF)

	r := &Report{
		ID:     "E8",
		Title:  "Full-text search over the archive (§2)",
		Claim:  "standard ranked keyword search over every page visited",
		Header: []string{"measure", "BM25", "TF-IDF"},
		Rows: [][]string{
			{"indexed pages", fmt.Sprint(ix.Docs()), fmt.Sprint(ix.Docs())},
			{"distinct terms", fmt.Sprint(ix.Terms()), fmt.Sprint(ix.Terms())},
			{"index build", buildTime.Round(time.Millisecond).String(), "-"},
			{"query p50", fmtDur(p50b), fmtDur(p50t)},
			{"query p99", fmtDur(p99b), fmtDur(p99t)},
			{"throughput", fmt.Sprintf("%.0f q/s", qpsB), fmt.Sprintf("%.0f q/s", qpsT)},
		},
		Metrics: map[string]float64{
			"qps_bm25": qpsB, "qps_tfidf": qpsT,
			"p50_us": float64(p50b) / float64(time.Microsecond),
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf("%d pages, %d terms; BM25 %.0f q/s at %v p50 (%d hits over %d queries)",
		ix.Docs(), ix.Terms(), qpsB, p50b.Round(time.Microsecond), hitsB, len(queries))
	return r
}

// E9 regenerates the §3 storage-coordination claim: the loosely-consistent
// versioning layer lets one producer publish continuously while consumers
// read consistent snapshots, far outpacing a single-lock design, with
// bounded staleness and zero consistency violations.
func E9(seed int64) *Report {
	start := time.Now()
	const keys = 128
	// window-based run below; see `window`
	const consumers = 4
	keyNames := make([]string, keys)
	for k := range keyNames {
		keyNames[k] = fmt.Sprintf("key%04d", k)
	}
	// analyze models the statistical analyzers' per-key compute (classifier
	// updates, clustering distance computations): real computation that
	// dwarfs the raw read.
	analyze := func(v []byte) uint64 {
		var h uint64 = 14695981039346656037
		for r := 0; r < 600; r++ {
			for _, b := range v {
				h = (h ^ uint64(b)) * 1099511628211
			}
		}
		return h
	}
	// Memex's analyzers are not pure compute: mid-pass they persist partial
	// aggregates (the indexer flushes posting lists, the clusterer writes
	// centroid updates back to the RDBMS). checkpointEvery/checkpointCost
	// model that blocking step. The pass keeps reading derived state after
	// each checkpoint, so the single-lock design must hold the lock across
	// it — releasing mid-pass would let the producer move the state under
	// the scan and tear consistency. Snapshot isolation instead lets the
	// producer (and the other analyzers) overlap those stalls.
	//
	// The blocking step is the experiment's model, not a tuning knob: with
	// a pure-CPU pass, CPU contention and lock contention coincide (on one
	// core exactly; approximately as cores saturate), so a global mutex
	// costs the producer nothing and no storage design can beat it — the
	// paper's "never blocks the producer" claim is only observable when
	// the lock is held across wall-clock time that isn't CPU time. Remove
	// checkpointCost and E9 stops measuring the claim at all.
	const checkpointEvery = 32
	const checkpointCost = 500 * time.Microsecond

	// Both designs run for a fixed wall-clock window with the producer and
	// consumers live simultaneously; we report both sides' rates plus the
	// producer-side publish latency, the direct measure of "never blocks
	// the producer". The versioned design lets all parties proceed
	// independently; the single-lock design serialises consumer scans
	// against producer batches.
	const window = 400 * time.Millisecond

	// The paper's Memex server is a multiprocessor machine: the crawler
	// and the analyzer demons genuinely run in parallel. On a single-CPU
	// CI box Go's scheduler gives the never-blocking producer ~10ms quanta
	// that starve the sleeping analyzers of timely wakeups, measuring the
	// scheduler instead of the store. Emulate the paper's hardware by
	// letting the OS timeshare one thread per party for the experiment.
	if runtime.GOMAXPROCS(0) < consumers+1 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(consumers + 1))
	}

	runVersioned := func() (pubPerS, scansPerS float64, pubP99 time.Duration, violations int64, maxStale uint64, st version.Stats) {
		// The sharded store: each 128-key batch spreads across all shards
		// and commits atomically store-wide, so the consumers' all-keys-
		// agree check also verifies cross-shard publish atomicity.
		s := version.NewStoreSharded(version.DefaultShards)
		b := s.BeginSized(keys)
		for _, k := range keyNames {
			b.Put(k, []byte("0"))
		}
		b.Publish()

		var stop atomic.Bool
		var readCount, viol atomic.Int64
		var staleMax atomic.Uint64
		var wg sync.WaitGroup
		var sink atomic.Uint64
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					snap := s.Acquire()
					var first []byte
					ok := true
					for i, k := range keyNames {
						v, got := snap.Get(k)
						if !got {
							ok = false
							break
						}
						sink.Add(analyze(v))
						if (i+1)%checkpointEvery == 0 {
							time.Sleep(checkpointCost) // persist partial aggregates
						}
						if i == 0 {
							first = v
						} else if string(v) != string(first) {
							ok = false
							break
						}
					}
					if !ok {
						viol.Add(1)
					}
					stale := s.Watermark() - snap.Epoch()
					for {
						cur := staleMax.Load()
						if stale <= cur || staleMax.CompareAndSwap(cur, stale) {
							break
						}
					}
					snap.Release()
					readCount.Add(1)
				}
			}()
		}
		t0 := time.Now()
		published := 0
		var pubLat []time.Duration
		for time.Since(t0) < window {
			p0 := time.Now()
			b := s.BeginSized(keys)
			val := []byte(fmt.Sprint(published))
			for _, k := range keyNames {
				b.Put(k, val)
			}
			b.Publish()
			pubLat = append(pubLat, time.Since(p0))
			published++
			if published%200 == 0 {
				s.GC()
			}
		}
		wall := time.Since(t0)
		stop.Store(true)
		wg.Wait()
		return float64(published) / wall.Seconds(),
			float64(readCount.Load()) / wall.Seconds(),
			percentile(pubLat, 99), viol.Load(), staleMax.Load(), s.StoreStats()
	}

	runMutex := func() (pubPerS, scansPerS float64, pubP99 time.Duration) {
		// The design the paper avoided: derived data guarded by one lock,
		// so an analyzer's scan blocks the producer for its whole pass —
		// checkpoints included — because the scan must be atomic to stay
		// consistent.
		var mu sync.Mutex
		state := map[string][]byte{}
		for _, k := range keyNames {
			state[k] = []byte("0")
		}
		var stop atomic.Bool
		var readCount atomic.Int64
		var sink atomic.Uint64
		var wg sync.WaitGroup
		for c := 0; c < consumers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					mu.Lock() // the whole consistent scan holds the lock
					for i, k := range keyNames {
						sink.Add(analyze(state[k]))
						if (i+1)%checkpointEvery == 0 {
							//memexvet:ignore lockiter deliberately models the paper's rejected design: a checkpoint blocking the producer inside the lock
							time.Sleep(checkpointCost) // persist partial aggregates
						}
					}
					mu.Unlock()
					readCount.Add(1)
				}
			}()
		}
		t0 := time.Now()
		published := 0
		var pubLat []time.Duration
		for time.Since(t0) < window {
			p0 := time.Now()
			mu.Lock()
			val := []byte(fmt.Sprint(published))
			for _, k := range keyNames {
				state[k] = val
			}
			mu.Unlock()
			pubLat = append(pubLat, time.Since(p0))
			published++
		}
		wall := time.Since(t0)
		stop.Store(true)
		wg.Wait()
		return float64(published) / wall.Seconds(),
			float64(readCount.Load()) / wall.Seconds(), percentile(pubLat, 99)
	}

	vPub, vReads, vP99, vViol, vStale, vStats := runVersioned()
	mPub, mReads, mP99 := runMutex()

	// Shard health after the run: how evenly the key space spread, and
	// how much superseded history the periodic GC retired.
	activeShards := 0
	for _, sh := range vStats.Shards {
		if sh.Entries > 0 {
			activeShards++
		}
	}

	r := &Report{
		ID:     "E9",
		Title:  "Loosely-consistent versioning: producer vs consumers (§3)",
		Claim:  "one producer publishes while consumers read consistent snapshots without blocking it",
		Header: []string{"measure", "versioned store", "global mutex"},
		Rows: [][]string{
			{"producer batches/s", fmt.Sprintf("%.0f", vPub), fmt.Sprintf("%.0f", mPub)},
			{"publish p99", fmtDur(vP99), fmtDur(mP99)},
			{"consumer scans/s (all 4)", fmt.Sprintf("%.0f", vReads), fmt.Sprintf("%.0f", mReads)},
			{"combined work/s (pub+scan)", fmt.Sprintf("%.0f", vPub+vReads), fmt.Sprintf("%.0f", mPub+mReads)},
			{"consistency violations", fmt.Sprint(vViol), "n/a (blocking)"},
			{"max snapshot staleness (epochs)", fmt.Sprint(vStale), "0 (serial)"},
			{"store shards (active/total)", fmt.Sprintf("%d/%d", activeShards, len(vStats.Shards)), "1 (monolithic map)"},
			{"max shard chain depth", fmt.Sprint(vStats.Layers), "n/a"},
			{"GC reclaimed versions", fmt.Sprint(vStats.GCReclaimed), "n/a (overwrites in place)"},
		},
		Metrics: map[string]float64{
			"pub_versioned": vPub, "pub_mutex": mPub,
			"scans_versioned": vReads, "scans_mutex": mReads,
			"pub_p99_us_versioned": float64(vP99) / float64(time.Microsecond),
			"pub_p99_us_mutex":     float64(mP99) / float64(time.Microsecond),
			"violations":           float64(vViol),
			"shards":               float64(len(vStats.Shards)),
			"gc_reclaimed":         float64(vStats.GCReclaimed),
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf(
		"versioned: %.0f batches/s (p99 %v) + %.0f scans/s with 0 violations and staleness ≤ %d; single lock: %.0f batches/s (p99 %v) with %.0f scans/s (producer and analyzers serialized)",
		vPub, vP99.Round(time.Microsecond), vReads, vStale, mPub, mP99.Round(time.Microsecond), mReads)
	if vViol > 0 {
		r.Finding = fmt.Sprintf("CONSISTENCY VIOLATIONS: %d", vViol)
	}
	return r
}

// E10 regenerates the Figure 1 interaction loop: the user's cut/paste
// corrections continually improve the classifier. Starting from a few
// seeds per folder, each round adds corrected labels for the model's worst
// guesses and retrains.
func E10(seed int64) *Report {
	start := time.Now()
	corpus := webcorpus.Generate(webcorpus.Config{
		Seed: seed, TopTopics: 6, SubPerTopic: 4, PagesPerLeaf: 40,
		FrontPageFrac: 0.4,
	})
	_ = sim.Config{}

	// Task: classify pages into leaf topics. Pool = all pages; start with
	// 3 labelled per topic; each round the user corrects 2 wrong guesses
	// per topic (simulating cut/paste in the folder tab).
	rng := rand.New(rand.NewSource(seed))
	labelled := map[int64]string{}
	for _, leaf := range corpus.Leaves() {
		ids := corpus.LeafPages[leaf.ID]
		for i := 0; i < 3; i++ {
			labelled[ids[rng.Intn(len(ids))]] = leaf.Path
		}
	}
	truthOf := func(p *webcorpus.Page) string { return corpus.TopicPath(p.Topic) }

	var rows [][]string
	var lastAcc float64
	for round := 0; round <= 5; round++ {
		trainer := classify.NewTrainer(nil)
		for page, label := range labelled {
			trainer.AddCounts(label, termCounts(corpus.Page(page)))
		}
		model, err := trainer.Train(classify.Options{})
		if err != nil {
			return &Report{ID: "E10", Finding: err.Error()}
		}
		// Evaluate on the unlabelled pool; collect mistakes per topic.
		correct, total := 0, 0
		mistakes := map[string][]int64{}
		for _, p := range corpus.Pages {
			if _, ok := labelled[p.ID]; ok {
				continue
			}
			got, _ := model.Classify(termCounts(&p))
			want := truthOf(&p)
			total++
			if got == want {
				correct++
			} else {
				mistakes[want] = append(mistakes[want], p.ID)
			}
		}
		lastAcc = float64(correct) / float64(maxI(total, 1))
		rows = append(rows, []string{
			fmt.Sprint(round),
			fmt.Sprint(len(labelled)),
			fmtPct(lastAcc),
		})
		// User corrects 2 mistakes per topic (moves them to the right
		// folder — which clears the guess and adds a training example).
		for topic, ids := range mistakes {
			for i := 0; i < 2 && i < len(ids); i++ {
				labelled[ids[i]] = topic
			}
		}
	}

	r := &Report{
		ID:     "E10",
		Title:  "Reinforce/correct loop: classifier improves with cut/paste (§2, Fig 1)",
		Claim:  "user corrections continually improve Memex's models of the user's topics",
		Header: []string{"round", "labelled pages", "accuracy on rest"},
		Rows:   rows,
		Metrics: map[string]float64{
			"final_accuracy": lastAcc,
		},
		Elapsed: time.Since(start),
	}
	first := rows[0][2]
	r.Finding = fmt.Sprintf("accuracy %s → %s over 5 correction rounds", first, rows[len(rows)-1][2])
	return r
}
