// Package experiments regenerates every figure and falsifiable claim of
// the Memex paper (the per-experiment index lives in DESIGN.md §3, the
// measured results in EXPERIMENTS.md). Each experiment is a pure function
// from a seed to a Report so that cmd/memex-bench and the root benchmark
// suite share one implementation.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Report is one experiment's regenerated table.
type Report struct {
	ID    string
	Title string
	// Header and Rows form the printed table.
	Header []string
	Rows   [][]string
	// Claim restates what the paper asserts; Finding what we measured.
	Claim   string
	Finding string
	Elapsed time.Duration
	// Metrics exposes headline numbers for benchmark reporting.
	Metrics map[string]float64
}

// Print renders the report as an aligned text table.
func (r *Report) Print() {
	fmt.Printf("== %s — %s ==\n", r.ID, r.Title)
	fmt.Printf("claim: %s\n", r.Claim)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Println("  " + strings.Join(parts, " | "))
	}
	printRow(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range r.Rows {
		printRow(row)
	}
	fmt.Printf("finding: %s\n(elapsed %v)\n\n", r.Finding, r.Elapsed.Round(time.Millisecond))
}

// All runs every experiment in order.
func All(seed int64) []*Report {
	return []*Report{
		E1(seed), E2(seed), E3(seed), E4(seed), E5(seed),
		E6(seed), E7(seed), E8(seed), E9(seed), E10(seed),
	}
}

// ByID runs one experiment by id ("E1".."E10"), or nil for unknown ids.
func ByID(id string, seed int64) *Report {
	switch strings.ToUpper(id) {
	case "E1":
		return E1(seed)
	case "E2":
		return E2(seed)
	case "E3":
		return E3(seed)
	case "E4":
		return E4(seed)
	case "E5":
		return E5(seed)
	case "E6":
		return E6(seed)
	case "E7":
		return E7(seed)
	case "E8":
		return E8(seed)
	case "E9":
		return E9(seed)
	case "E10":
		return E10(seed)
	}
	return nil
}

// fmtF formats a float at 3 decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// fmtPct formats a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// fmtDur rounds a duration for display.
func fmtDur(d time.Duration) string { return d.Round(time.Microsecond).String() }

// percentile returns the p-th percentile (0..100) of durations.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}
