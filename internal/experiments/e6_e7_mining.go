package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"memex/internal/crawler"
	"memex/internal/profile"
	"memex/internal/recommend"
	"memex/internal/sim"
	"memex/internal/text"
	"memex/internal/themes"
	"memex/internal/webcorpus"
)

// E6 regenerates the focused-crawling comparison behind the resource
// discovery demons (§4, [5]): harvest rate of a classifier-gated frontier
// vs unfocused breadth-first crawling, from the same seeds.
func E6(seed int64) *Report {
	start := time.Now()
	corpus := webcorpus.Generate(webcorpus.Config{
		Seed: seed, TopTopics: 8, SubPerTopic: 6, PagesPerLeaf: 70,
		IntraLeafProb: 0.35, IntraTopProb: 0.25,
	})
	leaf := corpus.Leaves()[0]
	top := corpus.Topics[leaf.Parent]
	prefix := top.Name + "_" + leaf.Name
	rel := func(fr crawler.FetchResult) float64 {
		words := strings.Fields(fr.Text)
		if len(words) == 0 {
			return 0
		}
		hits := 0
		for _, w := range words {
			if strings.HasPrefix(w, prefix) {
				hits++
			}
		}
		s := 2.5 * float64(hits) / float64(len(words))
		if s > 1 {
			s = 1
		}
		return s
	}
	fetch := cFetcher{corpus}
	seeds := corpus.LeafPages[leaf.ID][:3]

	budgets := []int{50, 100, 200, 400}
	var rows [][]string
	var lastF, lastB float64
	for _, budget := range budgets {
		f := crawler.Crawl(fetch, rel, seeds, crawler.Options{Budget: budget, Focused: true})
		b := crawler.Crawl(fetch, rel, seeds, crawler.Options{Budget: budget, Focused: false})
		lastF, lastB = f.HarvestRate(), b.HarvestRate()
		rows = append(rows, []string{
			fmt.Sprint(budget), fmtPct(lastF), fmtPct(lastB),
			fmt.Sprintf("×%.1f", lastF/maxF(lastB, 1e-9)),
		})
	}
	r := &Report{
		ID:     "E6",
		Title:  "Focused resource discovery vs unfocused crawl (§4, harvest rate)",
		Claim:  "the focused crawler sustains a far higher fraction of on-topic pages",
		Header: []string{"budget (pages)", "focused harvest", "BFS harvest", "advantage"},
		Rows:   rows,
		Metrics: map[string]float64{
			"harvest_focused": lastF,
			"harvest_bfs":     lastB,
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf("at 400 pages: focused %.1f%% vs BFS %.1f%% (×%.1f)",
		100*lastF, 100*lastB, lastF/maxF(lastB, 1e-9))
	return r
}

type cFetcher struct {
	c *webcorpus.Corpus
}

// Fetch implements crawler.Fetcher over the synthetic web.
func (f cFetcher) Fetch(page int64) (crawler.FetchResult, bool) {
	p := f.c.Page(page)
	if p == nil {
		return crawler.FetchResult{}, false
	}
	return crawler.FetchResult{Page: page, Text: p.Text, Links: p.Links}, true
}

// E7 regenerates the §4 recommendation claim: comparing surfers through
// theme-profile weights is "far superior to overlap in sets of URLs".
// Peers rank better and held-out precision is higher under profiles.
func E7(seed int64) *Report {
	start := time.Now()
	// The regime that motivates the paper's claim: the Web is vastly
	// larger than any surfer's recent history, so two like-minded surfers
	// rarely visit the same URLs. The theme taxonomy, however, is mature —
	// built from the community's accumulated folders over months — so even
	// a sparse new history can be normalised onto it. URL overlap has no
	// such anchor.
	corpus := webcorpus.Generate(webcorpus.Config{Seed: seed, TopTopics: 8, SubPerTopic: 6, PagesPerLeaf: 250})
	// Long-running community: source of the taxonomy.
	taxonomyTrace := sim.Simulate(corpus, sim.Config{
		Seed: seed + 1, Users: 50, Days: 20, BookmarkProb: 0.3,
		CommunityFocus: 0.25, InterestTopics: 3,
	})
	// Evaluation cohort: fresh members with short, sparse histories.
	trace := sim.Simulate(corpus, sim.Config{
		Seed: seed + 2, Users: 60, Days: 3,
		SessionsPerDay: 1, VisitsPerSession: 4,
		FollowProb:     0.3,
		CommunityFocus: 0.25, InterestTopics: 3,
		BookmarkProb: 0.1,
	})

	dict := text.NewDict()
	corp := text.NewCorpus()
	raw := map[int64]text.Vector{}
	for _, p := range corpus.Pages {
		v := text.VectorFromText(dict, p.Text)
		raw[p.ID] = v
		corp.AddDoc(v)
	}
	tfidf := func(page int64) text.Vector { return corp.TFIDF(raw[page]) }

	// Community taxonomy from the long-running community's bookmarks.
	folderDocs := map[string]*themes.UserFolder{}
	for _, b := range taxonomyTrace.Bookmarks {
		key := fmt.Sprintf("%d|%s", b.User, b.Folder)
		uf := folderDocs[key]
		if uf == nil {
			uf = &themes.UserFolder{User: b.User, Path: b.Folder}
			folderDocs[key] = uf
		}
		uf.Docs = append(uf.Docs, themes.DocVec{ID: b.Page, Vec: tfidf(b.Page)})
	}
	var ufs []themes.UserFolder
	for _, uf := range folderDocs {
		ufs = append(ufs, *uf)
	}
	tax := themes.Discover(ufs, dict, themes.Options{Seed: seed})

	// Hold out each user's last 25% of visits; train on the rest.
	trainVisits := map[int64][]int64{}
	heldOut := map[int64]map[int64]bool{}
	for _, u := range trace.Users {
		vs := trace.VisitsOf(u.ID)
		cut := len(vs) * 3 / 4
		for i, v := range vs {
			if i < cut {
				trainVisits[u.ID] = append(trainVisits[u.ID], v.Page)
			} else {
				if heldOut[u.ID] == nil {
					heldOut[u.ID] = map[int64]bool{}
				}
				heldOut[u.ID][v.Page] = true
			}
		}
	}

	profiles := map[int64]profile.Profile{}
	visited := map[int64]map[int64]bool{}
	for uid, pages := range trainVisits {
		var docs []themes.DocVec
		set := map[int64]bool{}
		for _, p := range pages {
			if !set[p] {
				set[p] = true
				docs = append(docs, themes.DocVec{ID: p, Vec: tfidf(p)})
			}
		}
		profiles[uid] = profile.Build(uid, docs, tax)
		visited[uid] = set
	}
	eng := recommend.NewEngine(profiles, visited)

	// Ground-truth interest similarity between two users (cosine over
	// their interest distributions). A good peer ranking should surface
	// peers whose true interests align with the user's.
	interestCos := func(a, b *sim.User) float64 {
		var dot, na, nb float64
		for t, w := range a.Interests {
			dot += w * b.Interests[t]
			na += w * w
		}
		for _, w := range b.Interests {
			nb += w * w
		}
		if na == 0 || nb == 0 {
			return 0
		}
		return dot / (sqrtF(na) * sqrtF(nb))
	}
	peerQuality := func(method recommend.Method) float64 {
		var sum float64
		n := 0
		for i := range trace.Users {
			u := &trace.Users[i]
			for _, p := range eng.Peers(u.ID, method, 5) {
				peer := trace.UserByID(p.User)
				if peer == nil {
					continue
				}
				sum += interestCos(u, peer)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	peerProf := peerQuality(recommend.ByProfile)
	peerURL := peerQuality(recommend.ByURLOverlap)
	// Random-peer baseline calibrates both numbers.
	var peerRand float64
	{
		var sum float64
		n := 0
		for i := range trace.Users {
			for j := range trace.Users {
				if i == j {
					continue
				}
				sum += interestCos(&trace.Users[i], &trace.Users[j])
				n++
			}
		}
		peerRand = sum / float64(maxI(n, 1))
	}

	// Recommendation quality in the sparse regime the paper targets: a
	// recommended page is useful when its topic is one the user cares
	// about ("resources organized by topic"), and — as a stricter bar —
	// when it appears in the user's held-out future visits.
	// A user who receives no recommendations is a service failure, not a
	// skipped sample: in the sparse regime most pairs share zero URLs, so
	// the overlap method cannot serve most users at all.
	onInterest := func(method recommend.Method) (onTopic, heldPrec, coverage float64) {
		var ot, hp float64
		served := 0
		for i := range trace.Users {
			u := &trace.Users[i]
			recs := eng.Recommend(u.ID, method, 10, 10)
			if len(recs) == 0 {
				continue // contributes 0 to both sums
			}
			served++
			hit := 0
			for _, pg := range recs {
				if _, ok := u.Interests[corpus.Page(pg).Topic]; ok {
					hit++
				}
			}
			ot += float64(hit) / float64(len(recs))
			hp += recommend.PrecisionAtK(recs, heldOut[u.ID])
		}
		n := float64(len(trace.Users))
		return ot / n, hp / n, float64(served) / n
	}
	otProf, hpProf, covProf := onInterest(recommend.ByProfile)
	otURL, hpURL, covURL := onInterest(recommend.ByURLOverlap)

	r := &Report{
		ID:     "E7",
		Title:  "Collaborative recommendation: theme profiles vs URL overlap (§4)",
		Claim:  "theme-profile similarity is far superior to overlap in sets of URLs",
		Header: []string{"measure", "theme profiles", "URL overlap"},
		Rows: [][]string{
			{"peer true-interest alignment", fmtF(peerProf), fmtF(peerURL)},
			{"  (random-peer baseline)", fmtF(peerRand), fmtF(peerRand)},
			{"users served (coverage)", fmtPct(covProf), fmtPct(covURL)},
			{"recommended pages on-interest", fmtPct(otProf), fmtPct(otURL)},
			{"precision@10 vs held-out visits", fmtPct(hpProf), fmtPct(hpURL)},
		},
		Metrics: map[string]float64{
			"peer_profile": peerProf, "peer_url": peerURL,
			"ontopic_profile": otProf, "ontopic_url": otURL,
		},
		Elapsed: time.Since(start),
	}
	r.Finding = fmt.Sprintf(
		"profiles: peer alignment %.3f vs %.3f (baseline %.3f), serve %.0f%% of users vs %.0f%%, on-interest %.0f%% vs %.0f%%",
		peerProf, peerURL, peerRand, 100*covProf, 100*covURL, 100*otProf, 100*otURL)
	return r
}

func sqrtF(v float64) float64 { return math.Sqrt(v) }
