package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"memex/internal/text"
)

// makeTopicItems builds items drawn from nTopics well-separated term
// distributions, returning items and ground-truth labels.
func makeTopicItems(rng *rand.Rand, d *text.Dict, nTopics, perTopic int) ([]Item, map[int64]string) {
	labels := map[int64]string{}
	var items []Item
	id := int64(0)
	for t := 0; t < nTopics; t++ {
		topic := fmt.Sprintf("topic%d", t)
		vocab := make([]string, 12)
		for i := range vocab {
			vocab[i] = fmt.Sprintf("t%dword%d", t, i)
		}
		for p := 0; p < perTopic; p++ {
			tf := map[string]int{}
			for w := 0; w < 15; w++ {
				tf[vocab[rng.Intn(len(vocab))]]++
			}
			// sprinkle shared noise
			tf["common"] = 1
			v := text.VectorFromCounts(d, tf).Normalize()
			items = append(items, Item{ID: id, Vec: v})
			labels[id] = topic
			id++
		}
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items, labels
}

func TestHACRecoversTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := text.NewDict()
	items, labels := makeTopicItems(rng, d, 4, 15)
	clusters := HAC(items, 4, 0)
	if len(clusters) != 4 {
		t.Fatalf("got %d clusters, want 4", len(clusters))
	}
	if p := Purity(clusters, labels); p < 0.95 {
		t.Fatalf("purity = %v, want >= 0.95", p)
	}
}

func TestHACStopsAtMinSim(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := text.NewDict()
	items, _ := makeTopicItems(rng, d, 3, 10)
	// A very high threshold should stop merging early, leaving > 3 clusters.
	clusters := HAC(items, 1, 0.99)
	if len(clusters) <= 3 {
		t.Fatalf("minSim did not stop merging: %d clusters", len(clusters))
	}
	// No threshold merges everything into 1.
	clusters = HAC(items, 1, 0)
	if len(clusters) != 1 {
		t.Fatalf("full merge got %d clusters", len(clusters))
	}
}

func TestHACEdgeCases(t *testing.T) {
	if got := HAC(nil, 3, 0); got != nil {
		t.Fatal("HAC(nil) != nil")
	}
	d := text.NewDict()
	one := []Item{{ID: 1, Vec: text.VectorFromCounts(d, map[string]int{"x": 1})}}
	cl := HAC(one, 5, 0)
	if len(cl) != 1 || cl[0].Size() != 1 {
		t.Fatalf("single item: %v", cl)
	}
	// k < 1 coerced to 1.
	two := append(one, Item{ID: 2, Vec: text.VectorFromCounts(d, map[string]int{"x": 1})})
	cl = HAC(two, 0, 0)
	if len(cl) != 1 {
		t.Fatalf("k=0: %d clusters", len(cl))
	}
}

func TestDendrogramCut(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := text.NewDict()
	items, labels := makeTopicItems(rng, d, 3, 8)
	root := HAC(items, 1, 0)[0]
	// Cutting at a moderately high similarity should recover >= 3 groups
	// with high purity.
	parts := Cut(root, 0.35)
	if len(parts) < 3 {
		t.Fatalf("cut produced %d parts", len(parts))
	}
	if p := Purity(parts, labels); p < 0.9 {
		t.Fatalf("cut purity = %v", p)
	}
	// Cut at 0 threshold returns the root itself.
	if got := Cut(root, 0); len(got) != 1 || got[0] != root {
		t.Fatal("threshold-0 cut should return root")
	}
	if Cut(nil, 0.5) != nil {
		t.Fatal("Cut(nil) != nil")
	}
}

func TestClusterDigest(t *testing.T) {
	d := text.NewDict()
	items := []Item{
		{ID: 1, Vec: text.VectorFromCounts(d, map[string]int{"violin": 3, "opera": 1})},
		{ID: 2, Vec: text.VectorFromCounts(d, map[string]int{"violin": 2, "concerto": 1})},
	}
	c := HAC(items, 1, 0)[0]
	digest := c.Digest(d, 2)
	if len(digest) != 2 || digest[0] != "violin" {
		t.Fatalf("digest = %v", digest)
	}
}

func TestDispersion(t *testing.T) {
	d := text.NewDict()
	same := []Item{
		{ID: 1, Vec: text.VectorFromCounts(d, map[string]int{"x": 1}).Normalize()},
		{ID: 2, Vec: text.VectorFromCounts(d, map[string]int{"x": 2}).Normalize()},
	}
	tight := HAC(same, 1, 0)[0]
	if disp := tight.Dispersion(); disp > 0.01 {
		t.Fatalf("identical-direction cluster dispersion = %v", disp)
	}
	mixed := []Item{
		{ID: 1, Vec: text.VectorFromCounts(d, map[string]int{"aaa": 1})},
		{ID: 2, Vec: text.VectorFromCounts(d, map[string]int{"bbb": 1})},
	}
	loose := HAC(mixed, 1, 0)[0]
	if loose.Dispersion() <= tight.Dispersion() {
		t.Fatal("orthogonal cluster not more dispersed")
	}
}

func TestBuckshotQualityAndSpeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := text.NewDict()
	items, labels := makeTopicItems(rng, d, 5, 60) // 300 items
	clusters := Buckshot(items, 5, rng)
	if len(clusters) != 5 {
		t.Fatalf("buckshot got %d clusters", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += c.Size()
	}
	if total != len(items) {
		t.Fatalf("buckshot assigned %d of %d items", total, len(items))
	}
	if p := Purity(clusters, labels); p < 0.85 {
		t.Fatalf("buckshot purity = %v", p)
	}
}

func TestBuckshotSmallInputFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := text.NewDict()
	items, _ := makeTopicItems(rng, d, 2, 2)
	clusters := Buckshot(items, 10, rng)
	if len(clusters) == 0 {
		t.Fatal("buckshot with k >= n returned nothing")
	}
}

func TestKMeans2(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := text.NewDict()
	items, labels := makeTopicItems(rng, d, 2, 20)
	parts := KMeans2(items, rng, 10)
	if parts == nil || len(parts) != 2 {
		t.Fatalf("KMeans2 = %v", parts)
	}
	if p := Purity(parts, labels); p < 0.9 {
		t.Fatalf("2-means purity = %v", p)
	}
	if KMeans2(items[:1], rng, 5) != nil {
		t.Fatal("KMeans2 on 1 item should return nil")
	}
}

func TestPurityEdgeCases(t *testing.T) {
	if Purity(nil, nil) != 0 {
		t.Fatal("Purity(nil) != 0")
	}
}

func BenchmarkHAC200(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	d := text.NewDict()
	items, _ := makeTopicItems(rng, d, 5, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HAC(items, 5, 0)
	}
}

func BenchmarkBuckshot1000(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	d := text.NewDict()
	items, _ := makeTopicItems(rng, d, 10, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Buckshot(items, 10, rng)
	}
}
