// Package cluster implements the clustering machinery Memex uses to
// propose topic hierarchies over bookmarks: bottom-up group-average
// hierarchical agglomerative clustering (HAC) in the style of
// scatter/gather (Cutting, Karger, Pedersen 1993), plus the buckshot
// sampling trick that gives constant interaction time on large
// collections, and cluster digests (top terms per cluster).
package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"memex/internal/text"
)

// Item is one object to cluster: an id and its (typically TF-IDF,
// unit-normalized) term vector.
type Item struct {
	ID  int64
	Vec text.Vector
}

// Cluster is a group of items with its centroid.
type Cluster struct {
	Items    []Item
	Centroid text.Vector
	// Children holds the two merged sub-clusters for dendrogram access
	// (nil for leaves).
	Children [2]*Cluster
	// Sim is the group-average similarity at which Children were merged.
	Sim float64
}

// Size returns the number of items in the cluster.
func (c *Cluster) Size() int { return len(c.Items) }

// Dispersion returns 1 - mean cosine of members to the centroid: 0 for a
// perfectly tight cluster. Used by theme discovery to decide refinement.
func (c *Cluster) Dispersion() float64 {
	if len(c.Items) == 0 {
		return 0
	}
	var s float64
	for _, it := range c.Items {
		s += text.Cosine(it.Vec, c.Centroid)
	}
	return 1 - s/float64(len(c.Items))
}

// Digest returns the k strongest centroid terms as strings.
func (c *Cluster) Digest(d *text.Dict, k int) []string {
	ids, _ := c.Centroid.Top(k)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = d.Term(id)
	}
	return out
}

// HAC performs group-average agglomerative clustering until k clusters
// remain (k >= 1) or the best merge similarity falls below minSim
// (minSim <= 0 disables the threshold). Returns the remaining clusters.
//
// Group-average similarity between clusters is computed on centroids
// scaled by cluster sizes, the standard O(n² log n) heap formulation.
func HAC(items []Item, k int, minSim float64) []*Cluster {
	n := len(items)
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	clusters := make([]*Cluster, n)
	active := make([]bool, n)
	for i, it := range items {
		clusters[i] = &Cluster{Items: []Item{it}, Centroid: it.Vec}
		active[i] = true
	}
	live := n

	// Candidate heap of pairwise similarities. Lazy deletion: a popped
	// candidate is valid only if both endpoints are still active and
	// unmerged since push.
	pq := &pairHeap{}
	heap.Init(pq)
	ver := make([]int, n) // bumped on merge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := groupAvg(clusters[i], clusters[j])
			heap.Push(pq, pair{i, j, ver[i], ver[j], s})
		}
	}

	for live > k && pq.Len() > 0 {
		p := heap.Pop(pq).(pair)
		if !active[p.i] || !active[p.j] || ver[p.i] != p.vi || ver[p.j] != p.vj {
			continue
		}
		if minSim > 0 && p.sim < minSim {
			break
		}
		// Merge j into i.
		ci, cj := clusters[p.i], clusters[p.j]
		merged := &Cluster{
			Items:    append(append([]Item(nil), ci.Items...), cj.Items...),
			Children: [2]*Cluster{ci, cj},
			Sim:      p.sim,
		}
		merged.Centroid = weightedCentroid(ci, cj)
		clusters[p.i] = merged
		active[p.j] = false
		ver[p.i]++
		live--
		for x := 0; x < n; x++ {
			if x == p.i || !active[x] {
				continue
			}
			s := groupAvg(clusters[p.i], clusters[x])
			a, b := p.i, x
			if a > b {
				a, b = b, a
			}
			heap.Push(pq, pair{a, b, ver[a], ver[b], s})
		}
	}
	var out []*Cluster
	for i := 0; i < n; i++ {
		if active[i] {
			out = append(out, clusters[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size() > out[j].Size() })
	return out
}

type pair struct {
	i, j   int
	vi, vj int
	sim    float64
}

type pairHeap []pair

func (h pairHeap) Len() int           { return len(h) }
func (h pairHeap) Less(i, j int) bool { return h[i].sim > h[j].sim }
func (h pairHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x any)        { *h = append(*h, x.(pair)) }
func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func groupAvg(a, b *Cluster) float64 {
	return text.Cosine(a.Centroid, b.Centroid)
}

func weightedCentroid(a, b *Cluster) text.Vector {
	na, nb := float64(a.Size()), float64(b.Size())
	wa := text.Vector{IDs: a.Centroid.IDs, Weights: append([]float64(nil), a.Centroid.Weights...)}
	wb := text.Vector{IDs: b.Centroid.IDs, Weights: append([]float64(nil), b.Centroid.Weights...)}
	sum := text.Add(wa.Scale(na), wb.Scale(nb))
	return sum.Scale(1 / (na + nb))
}

// Buckshot clusters a large collection in near-linear time, as in
// scatter/gather: run HAC on a random sample of size sqrt(k·n) to get k
// seed centroids, then assign every item to its nearest seed.
func Buckshot(items []Item, k int, rng *rand.Rand) []*Cluster {
	n := len(items)
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k >= n {
		return HAC(items, k, 0)
	}
	sampleSize := int(math.Sqrt(float64(k * n)))
	if sampleSize < k {
		sampleSize = k
	}
	perm := rng.Perm(n)
	sample := make([]Item, sampleSize)
	for i := 0; i < sampleSize; i++ {
		sample[i] = items[perm[i]]
	}
	seeds := HAC(sample, k, 0)

	out := make([]*Cluster, len(seeds))
	for i, s := range seeds {
		out[i] = &Cluster{Centroid: s.Centroid}
	}
	for _, it := range items {
		best, bestSim := 0, -1.0
		for i, c := range out {
			if s := text.Cosine(it.Vec, c.Centroid); s > bestSim {
				best, bestSim = i, s
			}
		}
		out[best].Items = append(out[best].Items, it)
	}
	// Recompute centroids from final assignments.
	for _, c := range out {
		if len(c.Items) == 0 {
			continue
		}
		vecs := make([]text.Vector, len(c.Items))
		for i, it := range c.Items {
			vecs[i] = it.Vec
		}
		c.Centroid = text.Centroid(vecs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Size() > out[j].Size() })
	return out
}

// KMeans2 splits items into two clusters by cosine k-means (used by theme
// refinement). Deterministic given rng; returns nil if items < 2.
func KMeans2(items []Item, rng *rand.Rand, iterations int) []*Cluster {
	if len(items) < 2 {
		return nil
	}
	if iterations <= 0 {
		iterations = 10
	}
	// Seed with two far-apart items: a random one and its least similar.
	a := rng.Intn(len(items))
	b, worst := -1, math.Inf(1)
	for i, it := range items {
		if i == a {
			continue
		}
		if s := text.Cosine(it.Vec, items[a].Vec); s < worst {
			worst, b = s, i
		}
	}
	cents := []text.Vector{items[a].Vec, items[b].Vec}
	assign := make([]int, len(items))
	for it := 0; it < iterations; it++ {
		changed := false
		for i, item := range items {
			best := 0
			if text.Cosine(item.Vec, cents[1]) > text.Cosine(item.Vec, cents[0]) {
				best = 1
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		for c := 0; c < 2; c++ {
			var vs []text.Vector
			for i := range items {
				if assign[i] == c {
					vs = append(vs, items[i].Vec)
				}
			}
			if len(vs) > 0 {
				cents[c] = text.Centroid(vs)
			}
		}
		if !changed {
			break
		}
	}
	out := []*Cluster{{Centroid: cents[0]}, {Centroid: cents[1]}}
	for i := range items {
		c := out[assign[i]]
		c.Items = append(c.Items, items[i])
	}
	if out[0].Size() == 0 || out[1].Size() == 0 {
		return nil // degenerate split
	}
	return out
}

// Purity scores a clustering against ground-truth labels: the weighted
// fraction of each cluster belonging to its majority label. 1.0 = perfect.
func Purity(clusters []*Cluster, labels map[int64]string) float64 {
	total, agree := 0, 0
	for _, c := range clusters {
		counts := map[string]int{}
		for _, it := range c.Items {
			counts[labels[it.ID]]++
			total++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		agree += best
	}
	if total == 0 {
		return 0
	}
	return float64(agree) / float64(total)
}

// Cut returns the dendrogram slice at similarity threshold: descending into
// merges whose Sim < threshold yields the clusters that were formed at or
// above it.
func Cut(root *Cluster, threshold float64) []*Cluster {
	if root == nil {
		return nil
	}
	if root.Children[0] == nil || root.Sim >= threshold {
		return []*Cluster{root}
	}
	out := Cut(root.Children[0], threshold)
	return append(out, Cut(root.Children[1], threshold)...)
}

func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{n=%d sim=%.3f}", c.Size(), c.Sim)
}
