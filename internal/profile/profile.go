// Package profile canonicalises surfers' interests the way §4 describes:
// "a user profile is a set of weights associated with each node of a theme
// hierarchy". Profiles are built by assigning a user's visited/bookmarked
// documents to community themes, propagating mass up the theme tree, and
// normalising. Comparing surfers through these weights — rather than raw
// URL-set overlap — is what makes collaborative recommendation work
// (experiment E7).
package profile

import (
	"math"
	"sort"

	"memex/internal/text"
	"memex/internal/themes"
)

// Profile is a user's weight per theme id (normalized to unit L2 norm).
type Profile struct {
	User    int64
	Weights map[int]float64
}

// Build assigns each document vector to community themes and accumulates
// weights. Assignment is soft — each document spreads its mass over its
// top-3 most similar leaf themes, proportional to cosine — which keeps
// profiles robust to noisy theme boundaries. Half of each increment also
// propagates to ancestor themes with geometric decay so that users who
// share a broad interest but different sub-themes still overlap.
func Build(user int64, docs []themes.DocVec, tax *themes.Taxonomy) Profile {
	p := Profile{User: user, Weights: map[int]float64{}}
	leaves := tax.Leaves()
	for _, d := range docs {
		type cand struct {
			id  int
			sim float64
		}
		var best []cand
		for _, id := range leaves {
			s := text.Cosine(d.Vec, tax.Themes[id].Centroid)
			if s <= 0 {
				continue
			}
			best = append(best, cand{id, s})
		}
		sort.Slice(best, func(i, j int) bool {
			if best[i].sim != best[j].sim {
				return best[i].sim > best[j].sim
			}
			return best[i].id < best[j].id
		})
		if len(best) > 3 {
			best = best[:3]
		}
		var total float64
		for _, c := range best {
			total += c.sim
		}
		for _, c := range best {
			w := c.sim / total
			p.Weights[c.id] += w
			mass := w / 2
			for parent := tax.Themes[c.id].Parent; parent >= 0; parent = tax.Themes[parent].Parent {
				p.Weights[parent] += mass
				mass /= 2
			}
		}
	}
	p.normalize()
	return p
}

func (p *Profile) normalize() {
	var sum float64
	for _, w := range p.Weights {
		sum += w * w
	}
	if sum == 0 {
		return
	}
	norm := math.Sqrt(sum)
	for k := range p.Weights {
		p.Weights[k] /= norm
	}
}

// Similarity is the cosine between two profiles.
func Similarity(a, b Profile) float64 {
	if len(a.Weights) > len(b.Weights) {
		a, b = b, a
	}
	var dot float64
	for k, w := range a.Weights {
		dot += w * b.Weights[k]
	}
	return dot
}

// TopThemes returns the user's k strongest theme ids, descending.
func (p Profile) TopThemes(k int) []int {
	ids := make([]int, 0, len(p.Weights))
	for id := range p.Weights {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if p.Weights[ids[i]] != p.Weights[ids[j]] {
			return p.Weights[ids[i]] > p.Weights[ids[j]]
		}
		return ids[i] < ids[j]
	})
	if k < len(ids) {
		ids = ids[:k]
	}
	return ids
}

// URLJaccard is the baseline the paper says profile similarity is "far
// superior" to: overlap of raw visited-page sets.
func URLJaccard(a, b map[int64]bool) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	inter := 0
	for p := range a {
		if b[p] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// FromVectors is a convenience: build a profile straight from raw page
// vectors (already TF-IDF normalized).
func FromVectors(user int64, vecs []text.Vector, ids []int64, tax *themes.Taxonomy) Profile {
	docs := make([]themes.DocVec, len(vecs))
	for i := range vecs {
		docs[i] = themes.DocVec{ID: ids[i], Vec: vecs[i]}
	}
	return Build(user, docs, tax)
}
