package profile

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"memex/internal/text"
	"memex/internal/themes"
)

// taxFor builds a small community taxonomy over two topic vocabularies.
func taxFor(t *testing.T, d *text.Dict) *themes.Taxonomy {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	var ufs []themes.UserFolder
	next := int64(1)
	for u := 1; u <= 4; u++ {
		for topic := 0; topic < 2; topic++ {
			uf := themes.UserFolder{User: int64(u), Path: fmt.Sprintf("/t%d", topic)}
			for k := 0; k < 8; k++ {
				tf := map[string]int{}
				for w := 0; w < 15; w++ {
					tf[fmt.Sprintf("topic%dword%d", topic, rng.Intn(10))]++
				}
				uf.Docs = append(uf.Docs, themes.DocVec{ID: next, Vec: text.VectorFromCounts(d, tf).Normalize()})
				next++
			}
			ufs = append(ufs, uf)
		}
	}
	return themes.Discover(ufs, d, themes.Options{Seed: 2})
}

func docsFor(d *text.Dict, rng *rand.Rand, topic, n int, base int64) []themes.DocVec {
	var out []themes.DocVec
	for k := 0; k < n; k++ {
		tf := map[string]int{}
		for w := 0; w < 15; w++ {
			tf[fmt.Sprintf("topic%dword%d", topic, rng.Intn(10))]++
		}
		out = append(out, themes.DocVec{ID: base + int64(k), Vec: text.VectorFromCounts(d, tf).Normalize()})
	}
	return out
}

func TestBuildNormalized(t *testing.T) {
	d := text.NewDict()
	tax := taxFor(t, d)
	rng := rand.New(rand.NewSource(3))
	p := Build(1, docsFor(d, rng, 0, 10, 1000), tax)
	var sum float64
	for _, w := range p.Weights {
		sum += w * w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("profile norm² = %v", sum)
	}
	if len(p.Weights) == 0 {
		t.Fatal("empty profile")
	}
}

func TestSimilarityDiscriminates(t *testing.T) {
	d := text.NewDict()
	tax := taxFor(t, d)
	rng := rand.New(rand.NewSource(4))
	a := Build(1, docsFor(d, rng, 0, 12, 1000), tax)
	b := Build(2, docsFor(d, rng, 0, 12, 2000), tax) // same interest
	c := Build(3, docsFor(d, rng, 1, 12, 3000), tax) // different interest
	if Similarity(a, b) <= Similarity(a, c) {
		t.Fatalf("same-interest sim %v <= cross sim %v", Similarity(a, b), Similarity(a, c))
	}
	if s := Similarity(a, a); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self-similarity = %v", s)
	}
}

func TestTopThemes(t *testing.T) {
	d := text.NewDict()
	tax := taxFor(t, d)
	rng := rand.New(rand.NewSource(5))
	docs := append(docsFor(d, rng, 0, 10, 1000), docsFor(d, rng, 1, 2, 2000)...)
	p := Build(1, docs, tax)
	top := p.TopThemes(1)
	if len(top) != 1 {
		t.Fatalf("TopThemes = %v", top)
	}
	// The dominant theme should hold mostly topic-0 docs.
	counts := 0
	for _, id := range tax.Themes[top[0]].Docs {
		_ = id
		counts++
	}
	if counts == 0 {
		t.Fatal("top theme empty")
	}
}

func TestURLJaccard(t *testing.T) {
	a := map[int64]bool{1: true, 2: true, 3: true}
	b := map[int64]bool{2: true, 3: true, 4: true}
	if got := URLJaccard(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("Jaccard = %v, want 0.5", got)
	}
	if URLJaccard(a, nil) != 0 || URLJaccard(nil, nil) != 0 {
		t.Fatal("empty-set Jaccard not 0")
	}
	if URLJaccard(a, a) != 1 {
		t.Fatal("self Jaccard != 1")
	}
}

func TestEmptyProfile(t *testing.T) {
	d := text.NewDict()
	tax := taxFor(t, d)
	p := Build(1, nil, tax)
	if len(p.Weights) != 0 {
		t.Fatal("profile from no docs has weights")
	}
	other := Build(2, nil, tax)
	if Similarity(p, other) != 0 {
		t.Fatal("similarity of empty profiles not 0")
	}
}
