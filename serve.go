package memex

import (
	"net/http"

	"memex/internal/client"
	"memex/internal/server"
)

// Handler returns the HTTP API handler for an engine, mountable in any
// http.Server (the paper's servlet container).
func (m *Memex) Handler() http.Handler {
	return server.New(m.Engine)
}

// Serve runs the HTTP API on addr until the server fails. It is a
// convenience for cmd/memexd; production deployments mount Handler on
// their own server for TLS/timeouts.
func (m *Memex) Serve(addr string) error {
	srv := &http.Server{Addr: addr, Handler: m.Handler()}
	return srv.ListenAndServe()
}

// Client is the typed HTTP client (the applet stand-in).
type Client = client.Client

// NewClient returns a client for a Memex server at base, e.g.
// "http://localhost:8600".
func NewClient(base string) *Client {
	return client.New(base)
}
