package memex

import (
	"net/http"

	"memex/internal/client"
	"memex/internal/server"
)

// ServeConfig tunes the HTTP layer's observability and admission
// middleware: per-client rate limiting, the global in-flight cap, and
// the backpressure thresholds that shed write endpoints. The zero value
// keeps every limiter off while still serving GET /metrics (see the
// internal/server package doc for the metric families and knobs).
type ServeConfig = server.Config

// Handler returns the HTTP API handler for an engine, mountable in any
// http.Server (the paper's servlet container). Admission control is
// disabled; use HandlerWith to enable it.
func (m *Memex) Handler() http.Handler {
	return server.New(m.Engine)
}

// HandlerWith returns the HTTP API handler with explicit admission
// settings.
func (m *Memex) HandlerWith(cfg ServeConfig) http.Handler {
	return server.NewWith(m.Engine, cfg)
}

// Serve runs the HTTP API on addr until the server fails. It is a
// convenience for cmd/memexd; production deployments mount Handler on
// their own server for TLS/timeouts.
func (m *Memex) Serve(addr string) error {
	srv := &http.Server{Addr: addr, Handler: m.Handler()}
	return srv.ListenAndServe()
}

// Client is the typed HTTP client (the applet stand-in).
type Client = client.Client

// NewClient returns a client for a Memex server at base, e.g.
// "http://localhost:8600".
func NewClient(base string) *Client {
	return client.New(base)
}
