// Command memexload drives a synthetic mixed ingest+query workload —
// Zipfian human sessions plus bursty robot crawls, per "Access Patterns
// for Robots and Humans in Web Archives" — against a live memexd and
// judges the run against SLO budgets read from the server's own
// /metrics histograms. It is the tool behind CI's slo job; see the
// internal/load package doc for the scenario format and budgets.
//
// Usage:
//
//	memexload -target http://localhost:8600 -scenario ci-small -seed 1 \
//	    -world-seed 7 -slo-p99-status 750ms -out LOAD_2026-08-08_abc123.json
//
// The schedule is a pure function of (-scenario, -seed): two runs with
// the same pair produce identical request sequences (-print-schedule
// dumps it without touching the server). -world-seed must match the
// target memexd's -seed so visits land on pages its world can resolve.
//
// Exit status: 0 when every budget holds, 1 on SLO violations, 2 on
// usage or run errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memex"
	"memex/internal/load"
)

func main() {
	var (
		target    = flag.String("target", "", "base URL of the memexd to drive (required unless -print-schedule)")
		scenario  = flag.String("scenario", "ci-small", "pinned scenario name (see internal/load: ci-small, unit)")
		seed      = flag.Int64("seed", 1, "schedule seed; same scenario+seed = identical request schedule")
		worldSeed = flag.Int64("world-seed", 7, "target server's world seed, for a URL/query universe its source resolves (0 = synthetic URLs the source will miss)")
		out       = flag.String("out", "", "write the LOAD_*.json report here (\"\" = stdout)")
		scrapeOut = flag.String("scrape-out", "", "save the raw final /metrics scrape here (CI's failure-triage artifact)")
		commit    = flag.String("commit", "", "commit hash to record in the report")
		printOnly = flag.Bool("print-schedule", false, "print the expanded schedule and exit without contacting the server")

		p99Status = flag.Duration("slo-p99-status", 0, "budget for p99 GET /api/status latency (0 = ungated)")
		maxLost   = flag.Int("slo-max-lost", 0, "budget for writes lost without a 429/503 answer")
		max5xx    = flag.Int("slo-max-5xx", 0, "budget for non-shed 5xx responses")
	)
	flag.Parse()

	sc, ok := load.Lookup(*scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "memexload: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	if *printOnly {
		load.FormatSchedule(os.Stdout, sc.Schedule(*seed))
		return
	}
	if *target == "" {
		fmt.Fprintln(os.Stderr, "memexload: -target is required")
		os.Exit(2)
	}

	urls, queries := universe(sc, *worldSeed)
	opt := load.Options{
		Target:  *target,
		URLs:    urls,
		Queries: queries,
		Seed:    *seed,
		Commit:  *commit,
	}
	if *scrapeOut != "" {
		f, err := os.Create(*scrapeOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memexload: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		opt.ScrapeOut = f
	}

	rep, err := load.Run(sc, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memexload: %v\n", err)
		os.Exit(2)
	}

	budget := load.Budget{
		P99StatusReadMs: float64(*p99Status) / float64(time.Millisecond),
		MaxLost:         *maxLost,
		Max5xx:          *max5xx,
	}
	res := load.Evaluate(rep, budget)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memexload: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		dst = f
	}
	if err := rep.WriteJSON(dst); err != nil {
		fmt.Fprintf(os.Stderr, "memexload: write report: %v\n", err)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "memexload: %s @ %s: %d requests in %.1fs; writes ok/shed/lost %d/%d/%d\n",
		sc.Name, *target, rep.Requests, rep.DurationSec,
		rep.Writes.OK, rep.Writes.Shed, rep.Writes.Lost())
	if ep, ok := rep.Endpoint(load.StatusEndpoint); ok {
		fmt.Fprintf(os.Stderr, "memexload: status reads p50/p99/p999 = %.2f/%.2f/%.2f ms over %d samples\n",
			ep.P50Ms, ep.P99Ms, ep.P999Ms, int(ep.Count))
	}
	if !res.Pass {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "memexload: SLO VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "memexload: SLO pass")
}

// universe builds the page/query sets the schedule indices resolve
// against. With a world seed it regenerates the same deterministic
// corpus the target memexd serves, so visits resolve to real pages and
// searches use terms the index actually contains; without one it
// fabricates URLs the source will miss (still a valid load shape — the
// fetch failures exercise the error path, not the SLO).
func universe(sc load.Scenario, worldSeed int64) (urls, queries []string) {
	if worldSeed != 0 {
		world := memex.GenerateWorld(memex.WorldConfig{Seed: worldSeed})
		for _, p := range world.Corpus.Pages {
			urls = append(urls, p.URL)
			if len(urls) == sc.Pages {
				break
			}
		}
		for _, t := range world.Corpus.Leaves() {
			queries = append(queries, t.Name)
			if len(queries) == sc.Queries {
				break
			}
		}
	}
	for len(urls) < sc.Pages {
		urls = append(urls, fmt.Sprintf("http://load.example.org/p%d.html", len(urls)))
	}
	for len(queries) < sc.Queries {
		queries = append(queries, fmt.Sprintf("query%d", len(queries)))
	}
	return urls, queries
}
