// Command memexd runs a Memex server over a synthetic Web world.
//
// In the paper's deployment the server tapped volunteers' Netscape
// browsers; this daemon substitutes the DESIGN.md S17 world (a generated
// topical Web plus, optionally, a pre-played community trace) and exposes
// the full servlet API on -addr. Point cmd/memexctl or any HTTP client at
// it.
//
// Usage:
//
//	memexd -addr :8600 -dir /tmp/memex -seed 7 -replay 5000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"memex"
)

func main() {
	var (
		addr   = flag.String("addr", ":8600", "listen address")
		dir    = flag.String("dir", "", "data directory (required; holds the kvstore with the RDBMS tables, WAL, and the version store's cold tier — restarting on the same directory recovers all archived derived state)")
		seed   = flag.Int64("seed", 7, "world seed")
		replay = flag.Int("replay", 0, "pre-play this many simulated community visits (0 = none)")
		themes = flag.Duration("themes", time.Minute, "theme-rebuild demon interval (0 = manual)")
		train  = flag.Duration("train", 30*time.Second, "classifier-retrain demon interval (0 = manual)")
		gc     = flag.Duration("gc", 0, "version-store GC/fold demon interval (0 = engine default of 2s, negative = manual)")
		cache  = flag.Int64("cache", 0, "decoded-record cache budget in bytes (0 = engine default of 32 MiB, negative = disabled)")

		// Admission control (all default off; GET /metrics serves the
		// per-endpoint histograms and shed counters either way).
		rate     = flag.Float64("rate", 0, "per-client request rate limit in req/s, keyed by user param or remote host (0 = unlimited)")
		burst    = flag.Int("burst", 0, "rate-limit burst size (0 = 2×rate, min 8)")
		inflight = flag.Int("inflight", 0, "global cap on concurrently served requests; excess get 503 (0 = unlimited)")
		shedQ    = flag.Float64("shed-queue", 0.9, "shed write endpoints with 503 when the background event queue is this full (0 = never)")
		shedLag  = flag.Uint64("shed-foldlag", 0, "shed write endpoints with 503 when the publish watermark runs this many epochs ahead of the durable fold watermark (0 = never)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "memexd: -dir is required")
		os.Exit(2)
	}

	world := memex.GenerateWorld(memex.WorldConfig{Seed: *seed})
	m, err := memex.Open(memex.Config{
		Dir:           *dir,
		Source:        world.Source(),
		ThemeInterval: *themes,
		TrainInterval: *train,
		GCInterval:    *gc,
		CacheBytes:    *cache,
	})
	if err != nil {
		log.Fatalf("memexd: %v", err)
	}
	defer m.Close()
	if st := m.Status(); st.Version.Cold != nil && st.Version.Cold.Records > 0 {
		log.Printf("recovered %d cold derived records at watermark %d from %s (%d pages indexed, link graph %d nodes/%d edges, no re-crawl needed)",
			st.Version.Cold.Records, st.Version.Cold.Watermark, *dir, st.PagesIndexed, st.GraphNodes, st.GraphEdges)
	}

	if *replay > 0 {
		log.Printf("replaying %d simulated visits from %d users…", *replay, len(world.Trace.Users))
		n, err := m.ReplayTrace(world, *replay)
		if err != nil {
			log.Fatalf("memexd: replay: %v", err)
		}
		m.DrainBackground()
		m.RetrainClassifiers()
		st := m.RebuildThemes()
		log.Printf("replayed %d visits; %d themes discovered", n, st.Themes)
	}

	// Serve until SIGINT/SIGTERM, then shut down in order: drain the HTTP
	// listener first (in-flight requests finish against a live engine),
	// then close the engine — Close folds the version store's remaining
	// in-memory tier to the cold keyspace, which is what makes the next
	// start on this -dir recover every archived derived record instead of
	// re-crawling. A hard kill loses only what was published after the
	// last GC fold (the crash contract in internal/version/cold.go).
	srv := &http.Server{Addr: *addr, Handler: m.HandlerWith(memex.ServeConfig{
		RatePerSec:        *rate,
		Burst:             *burst,
		MaxInFlight:       *inflight,
		ShedQueueFraction: *shedQ,
		ShedFoldLag:       *shedLag,
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	log.Printf("memex server listening on %s (world seed %d, %d pages)",
		*addr, *seed, len(world.Corpus.Pages))
	select {
	case err := <-errCh:
		// Fold before dying: log.Fatalf skips deferred Closes, and the
		// replayed/ingested derived state since the last GC fold would
		// otherwise be lost to a mere port clash.
		m.Close()
		log.Fatalf("memexd: serve: %v", err)
	case sig := <-sigCh:
		log.Printf("memexd: %v: draining requests, folding derived state to %s and shutting down", sig, *dir)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("memexd: http shutdown: %v", err)
		}
		cancel()
		if err := m.Close(); err != nil {
			log.Fatalf("memexd: close: %v", err)
		}
	}
}
