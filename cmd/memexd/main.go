// Command memexd runs a Memex server over a synthetic Web world.
//
// In the paper's deployment the server tapped volunteers' Netscape
// browsers; this daemon substitutes the DESIGN.md S17 world (a generated
// topical Web plus, optionally, a pre-played community trace) and exposes
// the full servlet API on -addr. Point cmd/memexctl or any HTTP client at
// it.
//
// Usage:
//
//	memexd -addr :8600 -dir /tmp/memex -seed 7 -replay 5000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"memex"
)

func main() {
	var (
		addr   = flag.String("addr", ":8600", "listen address")
		dir    = flag.String("dir", "", "storage directory (required)")
		seed   = flag.Int64("seed", 7, "world seed")
		replay = flag.Int("replay", 0, "pre-play this many simulated community visits (0 = none)")
		themes = flag.Duration("themes", time.Minute, "theme-rebuild demon interval (0 = manual)")
		train  = flag.Duration("train", 30*time.Second, "classifier-retrain demon interval (0 = manual)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "memexd: -dir is required")
		os.Exit(2)
	}

	world := memex.GenerateWorld(memex.WorldConfig{Seed: *seed})
	m, err := memex.Open(memex.Config{
		Dir:           *dir,
		Source:        world.Source(),
		ThemeInterval: *themes,
		TrainInterval: *train,
	})
	if err != nil {
		log.Fatalf("memexd: %v", err)
	}
	defer m.Close()

	if *replay > 0 {
		log.Printf("replaying %d simulated visits from %d users…", *replay, len(world.Trace.Users))
		n, err := m.ReplayTrace(world, *replay)
		if err != nil {
			log.Fatalf("memexd: replay: %v", err)
		}
		m.DrainBackground()
		m.RetrainClassifiers()
		st := m.RebuildThemes()
		log.Printf("replayed %d visits; %d themes discovered", n, st.Themes)
	}

	log.Printf("memex server listening on %s (world seed %d, %d pages)",
		*addr, *seed, len(world.Corpus.Pages))
	log.Fatal(m.Serve(*addr))
}
