// Command memexctl is a command-line client for a running memexd: the
// scriptable stand-in for the paper's applet tabs.
//
// Usage:
//
//	memexctl -server http://localhost:8600 <command> [args]
//
// Commands:
//
//	register <id> <name>               create a user
//	visit <user> <url> [privacy]       log a page view (community|private|off)
//	bookmark <user> <url> <folder>     file a page into a folder
//	correct <user> <url> <folder>      fix a classifier guess
//	search <user> <query...>           ranked full-text search
//	trails <user> <folder>             replay the topical browsing context
//	themes                             list community themes
//	rebuild                            rebuild community themes now
//	recommend <user> [profile|url]     collaborative recommendations
//	discover <user> <folder>           focused resource discovery
//	profile <user>                     theme-weight interest profile
//	usage <user>                       browsing time divided by topic (§1)
//	status                             server statistics
//	export <user>                      dump bookmarks as Netscape HTML
//	import <user> <file>               import a Netscape bookmark file
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"memex"
)

func main() {
	server := flag.String("server", "http://localhost:8600", "memexd base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "memexctl: a command is required (see -h)")
		os.Exit(2)
	}
	c := memex.NewClient(*server)
	if err := run(c, args); err != nil {
		fmt.Fprintf(os.Stderr, "memexctl: %v\n", err)
		os.Exit(1)
	}
}

func run(c *memex.Client, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "register":
		if len(rest) != 2 {
			return fmt.Errorf("usage: register <id> <name>")
		}
		id, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		return c.Register(id, rest[1])
	case "visit":
		if len(rest) < 2 {
			return fmt.Errorf("usage: visit <user> <url> [privacy]")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		privacy := "community"
		if len(rest) > 2 {
			privacy = rest[2]
		}
		return c.Visit(user, rest[1], "", time.Now(), privacy)
	case "bookmark":
		if len(rest) != 3 {
			return fmt.Errorf("usage: bookmark <user> <url> <folder>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		return c.Bookmark(user, rest[1], rest[2], time.Now())
	case "correct":
		if len(rest) != 3 {
			return fmt.Errorf("usage: correct <user> <url> <folder>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		return c.Correct(user, rest[1], rest[2])
	case "search":
		if len(rest) < 2 {
			return fmt.Errorf("usage: search <user> <query...>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		hits, err := c.Search(user, strings.Join(rest[1:], " "), 10)
		if err != nil {
			return err
		}
		for i, h := range hits {
			fmt.Printf("%2d. %-50s %.3f  %s\n", i+1, trunc(h.Title, 50), h.Score, h.URL)
		}
		return nil
	case "trails":
		if len(rest) != 2 {
			return fmt.Errorf("usage: trails <user> <folder>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		ctx, err := c.Trails(user, rest[1], 15)
		if err != nil {
			return err
		}
		fmt.Printf("trail context for %s: %d pages, %d transitions\n",
			ctx.Folder, len(ctx.Pages), len(ctx.Edges))
		for _, p := range ctx.Pages {
			fmt.Printf("  %-50s %.3f  %s\n", trunc(p.Title, 50), p.Score, p.URL)
		}
		if len(ctx.Popular) > 0 {
			fmt.Println("popular near this trail:")
			for _, p := range ctx.Popular {
				fmt.Printf("  %-50s %s\n", trunc(p.Title, 50), p.URL)
			}
		}
		return nil
	case "themes":
		ths, err := c.Themes()
		if err != nil {
			return err
		}
		for _, th := range ths {
			indent := ""
			if th.Parent >= 0 {
				indent = "  "
			}
			fmt.Printf("%s[%d] %-30s docs=%-4d users=%-3d %v\n",
				indent, th.ID, th.Label, th.Docs, th.Users, th.Signature)
		}
		return nil
	case "rebuild":
		st, err := c.RebuildThemes()
		if err != nil {
			return err
		}
		fmt.Printf("themes=%d roots=%d leaves=%d refined=%d foldersMerged=%d\n",
			st.Themes, st.Roots, st.Leaves, st.Refined, st.MergedIn)
		return nil
	case "recommend":
		if len(rest) < 1 {
			return fmt.Errorf("usage: recommend <user> [profile|url]")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		method := ""
		if len(rest) > 1 {
			method = rest[1]
		}
		recs, err := c.Recommend(user, 10, method)
		if err != nil {
			return err
		}
		for i, r := range recs {
			fmt.Printf("%2d. %-50s %s\n", i+1, trunc(r.Title, 50), r.URL)
		}
		return nil
	case "discover":
		if len(rest) != 2 {
			return fmt.Errorf("usage: discover <user> <folder>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		out, err := c.Discover(user, rest[1], 300, 10)
		if err != nil {
			return err
		}
		for i, r := range out {
			fmt.Printf("%2d. %-50s %.3f  %s\n", i+1, trunc(r.Title, 50), r.Score, r.URL)
		}
		return nil
	case "profile":
		if len(rest) != 1 {
			return fmt.Errorf("usage: profile <user>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		w, err := c.Profile(user)
		if err != nil {
			return err
		}
		for theme, weight := range w {
			fmt.Printf("theme %-4d %.4f\n", theme, weight)
		}
		return nil
	case "usage":
		if len(rest) != 1 {
			return fmt.Errorf("usage: usage <user>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		slices, err := c.Usage(user, time.Time{})
		if err != nil {
			return err
		}
		for _, s := range slices {
			fmt.Printf("%-30s %5.1f%%  %8s  %d visits\n",
				s.Folder, 100*s.Share, s.Time.Round(time.Second), s.Visits)
		}
		return nil
	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		fmt.Printf("users=%d pages=%d indexed=%d visits=%d bookmarks=%d queue=%d dropped=%d themes=%d disk=%dB\n",
			st.Users, st.Pages, st.PagesIndexed, st.Visits, st.Bookmarks,
			st.QueueDepth, st.EventsDropped, st.Themes, st.DiskBytes)
		return nil
	case "export":
		if len(rest) != 1 {
			return fmt.Errorf("usage: export <user>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		out, err := c.ExportBookmarks(user)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	case "import":
		if len(rest) != 2 {
			return fmt.Errorf("usage: import <user> <file>")
		}
		user, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return err
		}
		f, err := os.Open(rest[1])
		if err != nil {
			return err
		}
		defer f.Close()
		n, err := c.ImportBookmarks(user, f)
		if err != nil {
			return err
		}
		fmt.Printf("imported %d bookmarks\n", n)
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
