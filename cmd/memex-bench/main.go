// Command memex-bench regenerates every figure and falsifiable claim of
// the Memex paper as text tables (the per-experiment index is DESIGN.md
// §3; results are recorded in EXPERIMENTS.md).
//
// Usage:
//
//	memex-bench              # run all experiments E1..E10
//	memex-bench -exp E1      # run one experiment
//	memex-bench -seed 17     # change the world seed
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"memex/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E10); empty = all")
	seed := flag.Int64("seed", 7, "world seed")
	flag.Parse()

	t0 := time.Now()
	if *exp != "" {
		r := experiments.ByID(*exp, *seed)
		if r == nil {
			fmt.Fprintf(os.Stderr, "memex-bench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		r.Print()
		return
	}
	for _, r := range experiments.All(*seed) {
		r.Print()
	}
	fmt.Printf("all experiments completed in %v\n", time.Since(t0).Round(time.Millisecond))
}
