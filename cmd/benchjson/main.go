// Command benchjson converts `go test -bench` output into the repo's
// BENCH_<date>.json trajectory format, so CI can append one machine-
// readable point per run to the performance history.
//
// Usage:
//
//	go test -run '^$' -bench . -count=5 ./... | benchjson -commit $SHA > BENCH_2026-07-28.json
//	benchjson -load < LOAD_2026-08-08_abc123.json   # validate an SLO point
//
// Repeated runs of the same benchmark (-count > 1) are aggregated into
// one entry carrying the min/mean/max ns/op, which is what makes the
// trajectory robust to scheduler noise on shared CI runners. With
// -load the tool instead validates and canonically re-emits one of
// cmd/memexload's LOAD_*.json SLO points — the same trajectory
// convention, measured in quantiles instead of ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"memex/internal/load"
)

// Point is one benchmark's aggregated measurement in a trajectory file.
type Point struct {
	Name string `json:"name"`
	// Runs is how many -count repetitions were aggregated.
	Runs      int     `json:"runs"`
	NsPerOp   float64 `json:"ns_per_op"`       // mean
	MinNsOp   float64 `json:"min_ns_per_op"`   //
	MaxNsOp   float64 `json:"max_ns_per_op"`   //
	BytesOp   float64 `json:"bytes_per_op"`    // mean, -1 when unreported
	AllocsOp  float64 `json:"allocs_per_op"`   // mean, -1 when unreported
	MBPerSec  float64 `json:"mb_per_s"`        // mean, -1 when unreported
	Iteration int64   `json:"iterations_last"` // b.N of the last run
}

// File is the BENCH_<date>.json schema.
type File struct {
	Date      string `json:"date"`
	Commit    string `json:"commit,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is the runner's logical core count. Shared CI hardware is not
	// a pinned machine: the shard-scaling benchmarks degenerate to serial
	// merges on few cores, so a trajectory walker (and the CI benchstat
	// step) must know when two points ran on different shapes before
	// treating their delta as a regression.
	CPUs       int     `json:"cpus"`
	Benchmarks []Point `json:"benchmarks"`
}

func main() {
	commit := flag.String("commit", "", "commit hash to record")
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "date to record (YYYY-MM-DD)")
	loadMode := flag.Bool("load", false, "stdin is a LOAD_*.json SLO report: validate it and re-emit the canonical encoding instead of parsing bench output")
	flag.Parse()

	if *loadMode {
		if err := runLoad(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(os.Stdin, os.Stdout, *commit, *date); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runLoad is the SLO-point half of the trajectory tooling: it parses a
// load report (validating the schema, sorted endpoint rows and ordered
// quantiles) and re-emits the canonical encoding. A report that
// survives this byte-identically is guaranteed readable by everything
// that walks LOAD_* history.
func runLoad(r io.Reader, w io.Writer) error {
	rep, err := load.ReadReport(r)
	if err != nil {
		return err
	}
	return rep.WriteJSON(w)
}

func run(r io.Reader, w io.Writer, commit, date string) error {
	points, err := Parse(r)
	if err != nil {
		return err
	}
	if len(points) == 0 {
		// An empty run (all benchmarks filtered out, or a package with no
		// benchmarks yet) still yields a valid trajectory point: tooling
		// that walks the history must be able to cross a gap without
		// special cases, and a hard failure here would turn "no
		// benchmarks matched" into a broken CI bench job.
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark lines on stdin; emitting empty trajectory point")
		points = []Point{}
	}
	out := File{
		Date:       date,
		Commit:     commit,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Benchmarks: points,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// sample is one parsed benchmark result line.
type sample struct {
	n                       int64
	ns, bytes, allocs, mbps float64
	hasBytes, hasAllocs     bool
	hasMBps                 bool
}

// Parse reads `go test -bench` output and aggregates per-benchmark
// samples into trajectory points, sorted by name.
func Parse(r io.Reader) ([]Point, error) {
	samples := map[string][]sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(samples))
	for n := range samples {
		names = append(names, n)
	}
	sort.Strings(names)
	points := make([]Point, 0, len(names))
	for _, name := range names {
		ss := samples[name]
		p := Point{Name: name, Runs: len(ss), BytesOp: -1, AllocsOp: -1, MBPerSec: -1,
			MinNsOp: ss[0].ns, MaxNsOp: ss[0].ns}
		var sumNs, sumB, sumA, sumM float64
		nB, nA, nM := 0, 0, 0
		for _, s := range ss {
			sumNs += s.ns
			if s.ns < p.MinNsOp {
				p.MinNsOp = s.ns
			}
			if s.ns > p.MaxNsOp {
				p.MaxNsOp = s.ns
			}
			if s.hasBytes {
				sumB += s.bytes
				nB++
			}
			if s.hasAllocs {
				sumA += s.allocs
				nA++
			}
			if s.hasMBps {
				sumM += s.mbps
				nM++
			}
			p.Iteration = s.n
		}
		p.NsPerOp = sumNs / float64(len(ss))
		if nB > 0 {
			p.BytesOp = sumB / float64(nB)
		}
		if nA > 0 {
			p.AllocsOp = sumA / float64(nA)
		}
		if nM > 0 {
			p.MBPerSec = sumM / float64(nM)
		}
		points = append(points, p)
	}
	return points, nil
}

// parseLine recognises one result line, e.g.
//
//	BenchmarkGet/shards=8-16   1000000   1052 ns/op   120 B/op   3 allocs/op
//
// The "-16" GOMAXPROCS suffix stays part of the name, as benchstat keeps
// it; non-benchmark lines (PASS, ok, goos: …) return ok=false.
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", sample{}, false
	}
	s := sample{n: n}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.ns = v
			seenNs = true
		case "B/op":
			s.bytes = v
			s.hasBytes = true
		case "allocs/op":
			s.allocs = v
			s.hasAllocs = true
		case "MB/s":
			s.mbps = v
			s.hasMBps = true
		}
	}
	if !seenNs {
		return "", sample{}, false
	}
	return fields[0], s, true
}
