package main

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"memex/internal/load"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: memex/internal/version
cpu: AMD EPYC 7B13
BenchmarkSnapshotGet/shards=8-16         	52441594	        22.41 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnapshotGet/shards=8-16         	53000000	        21.99 ns/op	       0 B/op	       0 allocs/op
BenchmarkPublish-16                      	  861672	      1341 ns/op	     672 B/op	       8 allocs/op
BenchmarkFold-16                         	     100	  10234567 ns/op
PASS
ok  	memex/internal/version	12.3s
`

func TestParseAggregatesRuns(t *testing.T) {
	points, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3: %+v", len(points), points)
	}
	// Sorted by name: Fold, Publish, SnapshotGet.
	if points[0].Name != "BenchmarkFold-16" || points[2].Name != "BenchmarkSnapshotGet/shards=8-16" {
		t.Fatalf("unexpected order: %q, %q, %q", points[0].Name, points[1].Name, points[2].Name)
	}
	get := points[2]
	if get.Runs != 2 {
		t.Fatalf("Runs = %d, want 2", get.Runs)
	}
	if get.MinNsOp != 21.99 || get.MaxNsOp != 22.41 {
		t.Fatalf("min/max = %v/%v", get.MinNsOp, get.MaxNsOp)
	}
	if mean := (22.41 + 21.99) / 2; get.NsPerOp != mean {
		t.Fatalf("mean = %v, want %v", get.NsPerOp, mean)
	}
	if get.AllocsOp != 0 || get.BytesOp != 0 {
		t.Fatalf("allocs/bytes = %v/%v, want 0/0", get.AllocsOp, get.BytesOp)
	}
	fold := points[0]
	if fold.BytesOp != -1 || fold.AllocsOp != -1 {
		t.Fatalf("unreported memory stats should be -1, got %v/%v", fold.BytesOp, fold.AllocsOp)
	}
	if fold.Iteration != 100 {
		t.Fatalf("Iteration = %d", fold.Iteration)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	points, err := Parse(strings.NewReader("PASS\nok  \tmemex\t1s\nBenchmarkBroken abc ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 0 {
		t.Fatalf("parsed noise as benchmarks: %+v", points)
	}
}

func TestEmptyHistoryEmitsValidFile(t *testing.T) {
	// A bench run that matched nothing (the first point in a repo's
	// trajectory, or a filtered run) must still produce a parseable file
	// with an empty — not null — benchmark list, and must not error.
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok  \tmemex\t0.1s\n"), &out, "abc1234", "2026-08-08"); err != nil {
		t.Fatalf("empty history should not be an error: %v", err)
	}
	var f File
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.Bytes())
	}
	if f.Benchmarks == nil {
		t.Fatal("benchmarks is null, want empty list")
	}
	if len(f.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %+v, want empty", f.Benchmarks)
	}
	if f.Commit != "abc1234" || f.Date != "2026-08-08" {
		t.Fatalf("metadata lost on empty run: %+v", f)
	}
}

func TestRunRecordsRunnerShape(t *testing.T) {
	// Satellite of the CI hardening: a trajectory point without the
	// runner's core count can't be compared honestly against its
	// neighbors (shard-scaling benchmarks degenerate on small runners).
	var out bytes.Buffer
	if err := run(strings.NewReader("BenchmarkX 100 50 ns/op\n"), &out, "", "2026-08-08"); err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(out.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.CPUs != runtime.NumCPU() || f.CPUs <= 0 {
		t.Fatalf("cpus = %d, want %d", f.CPUs, runtime.NumCPU())
	}
	if f.GOARCH != runtime.GOARCH {
		t.Fatalf("goarch = %q, want %q", f.GOARCH, runtime.GOARCH)
	}
}

func TestLoadModeRoundTripsCanonically(t *testing.T) {
	rep := &load.Report{
		Schema:   load.SchemaLoad,
		Date:     "2026-08-08",
		Commit:   "abc1234",
		Target:   "http://localhost:8600",
		Scenario: "ci-small",
		Seed:     1,
		Requests: 3,
		Endpoints: []load.EndpointReport{
			{Endpoint: "GET /api/status", Count: 2, P50Ms: 1, P99Ms: 2, P999Ms: 3},
			{Endpoint: "POST /api/event", Count: 1, P50Ms: 1, P99Ms: 1, P999Ms: 1},
		},
	}
	var canonical bytes.Buffer
	if err := rep.WriteJSON(&canonical); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runLoad(bytes.NewReader(canonical.Bytes()), &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonical.Bytes(), out.Bytes()) {
		t.Fatalf("-load did not round-trip byte-identically:\n%s\nvs\n%s", canonical.Bytes(), out.Bytes())
	}

	// And it must refuse what the schema forbids: unsorted endpoint rows
	// would break every history walker that bisects by name.
	bad := *rep
	bad.Endpoints = []load.EndpointReport{rep.Endpoints[1], rep.Endpoints[0]}
	var badBuf bytes.Buffer
	if err := bad.WriteJSON(&badBuf); err != nil {
		t.Fatal(err)
	}
	if err := runLoad(bytes.NewReader(badBuf.Bytes()), &out); err == nil {
		t.Fatal("-load accepted unsorted endpoint rows")
	}
}
