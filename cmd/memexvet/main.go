// Command memexvet runs the repo's invariant analyzers (pinleak, lockiter,
// detmap, epochbatch, atomicmix, replyorder, detsched, viewescape — see
// internal/analysis) over Go packages.
//
// Standalone, as CI runs it:
//
//	go run ./cmd/memexvet ./...
//
// Diagnostics print one per line to stderr; the exit status is 2 if any
// finding survives suppression, 1 on internal error, 0 on a clean tree.
// Two output flags reshape findings for machines:
//
//	-json     emit the findings as a JSON array on stdout
//	-github   emit GitHub Actions workflow commands (::error file=…) on
//	          stdout so findings annotate the PR diff inline
//
// The binary also speaks enough of cmd/vet's unitchecker protocol to be
// used as `go vet -vettool=$(which memexvet) ./...`, which additionally
// covers _test.go files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"memex/internal/analysis"
)

func main() {
	args := os.Args[1:]

	// Vettool handshake: `go vet` probes the tool's version and its
	// supported flags (a JSON list; this suite takes none) before running.
	for _, a := range args {
		switch a {
		case "-V=full", "-V":
			fmt.Println("memexvet version 1 (memex invariant suite)")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}

	// Unitchecker mode: go vet invokes the tool once per package with a
	// single *.cfg argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	githubOut := flag.Bool("github", false, "emit GitHub Actions ::error annotations on stdout")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memexvet:", err)
		os.Exit(1)
	}
	exit := 0
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "memexvet: %s: type error: %v\n", pkg.ImportPath, terr)
			exit = 1
		}
		diags, err := analysis.RunPackage(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "memexvet: %s: %v\n", pkg.ImportPath, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			all = append(all, d)
			if exit == 0 {
				exit = 2
			}
		}
	}
	if *jsonOut {
		emitJSON(os.Stdout, all)
	}
	if *githubOut {
		emitGitHub(os.Stdout, all)
	}
	os.Exit(exit)
}

// jsonDiag is the stable machine-readable finding shape for -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// emitJSON writes every finding as one JSON array (always an array, even
// when empty, so consumers need no null handling).
func emitJSON(w io.Writer, diags []analysis.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     relPath(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// emitGitHub writes one workflow command per finding so the Actions
// runner renders it inline on the PR diff. Messages are escaped per the
// workflow-command rules (%, CR, LF have %-encodings).
func emitGitHub(w io.Writer, diags []analysis.Diagnostic) {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	for _, d := range diags {
		fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=memexvet(%s)::%s\n",
			relPath(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, esc.Replace(d.Message))
	}
}

// relPath rewrites an absolute diagnostic path relative to the working
// directory — the form GitHub annotations and editors want — falling back
// to the original when the file lies elsewhere.
func relPath(p string) string {
	wd, err := os.Getwd()
	if err != nil {
		return p
	}
	rel, err := filepath.Rel(wd, p)
	if err != nil || strings.HasPrefix(rel, "..") {
		return p
	}
	return rel
}

// vetConfig is the subset of cmd/go's vet configuration file we consume.
type vetConfig struct {
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memexvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "memexvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver requires the facts output to exist even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "memexvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	imp := unsafeImporter{importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})}

	var goFiles []string
	for _, f := range cfg.GoFiles {
		// Fixture-style assembly stubs etc. are not our concern.
		if filepath.Ext(f) == ".go" {
			goFiles = append(goFiles, f)
		}
	}
	pkg, err := analysis.TypeCheck(fset, cfg.ImportPath, goFiles, imp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memexvet:", err)
		return 1
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "memexvet: %s: type error: %v\n", cfg.ImportPath, terr)
		}
		return 1
	}

	diags, err := analysis.RunPackage(pkg, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "memexvet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type unsafeImporter struct{ inner types.Importer }

func (i unsafeImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.inner.Import(path)
}
