// Root benchmark suite: one testing.B benchmark per experiment in
// DESIGN.md §3 (regenerating the paper's figures/claims and reporting the
// headline numbers as custom metrics), plus the A1–A4 ablation benches for
// the design decisions DESIGN.md §4 calls out.
//
// Run with: go test -bench=. -benchmem
package memex

import (
	"fmt"
	"math/rand"
	"testing"

	"memex/internal/classify"
	"memex/internal/cluster"
	"memex/internal/experiments"
	"memex/internal/kvstore"
	"memex/internal/sim"
	"memex/internal/text"
	"memex/internal/webcorpus"
)

// benchExperiment runs one experiment per iteration and republishes its
// headline metrics through the benchmark framework.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var last map[string]float64
	for i := 0; i < b.N; i++ {
		r := experiments.ByID(id, 7)
		if r == nil {
			b.Fatalf("unknown experiment %s", id)
		}
		last = r.Metrics
	}
	for k, v := range last {
		b.ReportMetric(v, k)
	}
}

func BenchmarkE1Classification(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2TrailReplay(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3EventPipeline(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4ThemeDiscovery(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5StorageDivision(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6FocusedCrawl(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7Recommendation(b *testing.B)  { benchExperiment(b, "E7") }
func BenchmarkE8Search(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9Versioning(b *testing.B)      { benchExperiment(b, "E9") }
func BenchmarkE10Corrections(b *testing.B)    { benchExperiment(b, "E10") }

// --- Ablation benches (DESIGN.md §3) ---

// e1World builds the labelled bookmark world shared by the classifier
// ablations.
func e1World(b *testing.B) (*webcorpus.Corpus, *sim.Trace) {
	b.Helper()
	corpus := webcorpus.Generate(webcorpus.Config{
		Seed: 7, TopTopics: 8, SubPerTopic: 6, PagesPerLeaf: 30,
		FrontPageFrac: 0.7, FrontWords: 9, FrontTopicMix: 0.09,
	})
	trace := sim.Simulate(corpus, sim.Config{Seed: 8, Users: 60, Days: 25, BookmarkProb: 0.3})
	return corpus, trace
}

// BenchmarkAblationFeatureSelection contrasts naive Bayes training and
// accuracy with the full vocabulary vs Fisher-selected features (design
// decision S6).
func BenchmarkAblationFeatureSelection(b *testing.B) {
	corpus, trace := e1World(b)
	train := map[int64]string{}
	var test []int64
	for i, bm := range trace.Bookmarks {
		label := corpus.TopicPath(corpus.Page(bm.Page).Topic)
		if i%5 != 4 {
			train[bm.Page] = label
		} else {
			test = append(test, bm.Page)
		}
	}
	for _, variant := range []struct {
		name string
		opts classify.Options
	}{
		{"allFeatures", classify.Options{}},
		{"fisher2000", classify.Options{MaxFeatures: 2000}},
		{"fisher500", classify.Options{MaxFeatures: 500}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				tr := classify.NewTrainer(nil)
				for page, label := range train {
					tr.AddCounts(label, text.TermCounts(corpus.Page(page).Text))
				}
				model, err := tr.Train(variant.opts)
				if err != nil {
					b.Fatal(err)
				}
				correct := 0
				for _, page := range test {
					got, _ := model.Classify(text.TermCounts(corpus.Page(page).Text))
					if got == corpus.TopicPath(corpus.Page(page).Topic) {
						correct++
					}
				}
				acc = float64(correct) / float64(len(test))
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkAblationBuckshot contrasts full HAC with buckshot-sampled
// clustering on time and purity (design decision S8: "constant interaction
// time").
func BenchmarkAblationBuckshot(b *testing.B) {
	d := text.NewDict()
	rng := rand.New(rand.NewSource(7))
	var items []cluster.Item
	labels := map[int64]string{}
	id := int64(0)
	for t := 0; t < 8; t++ {
		for p := 0; p < 50; p++ {
			tf := map[string]int{}
			for w := 0; w < 15; w++ {
				tf[fmt.Sprintf("t%dw%d", t, rng.Intn(12))]++
			}
			items = append(items, cluster.Item{ID: id, Vec: text.VectorFromCounts(d, tf).Normalize()})
			labels[id] = fmt.Sprint(t)
			id++
		}
	}
	b.Run("fullHAC", func(b *testing.B) {
		var purity float64
		for i := 0; i < b.N; i++ {
			cs := cluster.HAC(items, 8, 0)
			purity = cluster.Purity(cs, labels)
		}
		b.ReportMetric(purity, "purity")
	})
	b.Run("buckshot", func(b *testing.B) {
		var purity float64
		for i := 0; i < b.N; i++ {
			cs := cluster.Buckshot(items, 8, rand.New(rand.NewSource(int64(i))))
			purity = cluster.Purity(cs, labels)
		}
		b.ReportMetric(purity, "purity")
	})
}

// BenchmarkAblationLinkWeight sweeps the hyperlink evidence weight λ_L of
// the combined classifier (design decision S7 / DESIGN.md §4.4).
func BenchmarkAblationLinkWeight(b *testing.B) {
	corpus, trace := e1World(b)
	seen := map[int64]bool{}
	var docs []classify.Doc
	truth := map[int64]string{}
	tr := classify.NewTrainer(nil)
	i := 0
	for _, bm := range trace.Bookmarks {
		if seen[bm.Page] {
			continue
		}
		seen[bm.Page] = true
		p := corpus.Page(bm.Page)
		label := corpus.TopicPath(p.Topic)
		d := classify.Doc{ID: bm.Page, TF: text.TermCounts(p.Text)}
		for _, l := range p.Links {
			d.Neighbors = append(d.Neighbors, l)
		}
		if i%5 != 4 {
			d.Label = label
			tr.AddCounts(label, d.TF)
		} else {
			truth[bm.Page] = label
		}
		docs = append(docs, d)
		i++
	}
	// Keep only in-set neighbours.
	for i := range docs {
		var nb []int64
		for _, l := range docs[i].Neighbors {
			if seen[l] {
				nb = append(nb, l)
			}
		}
		docs[i].Neighbors = nb
	}
	model, err := tr.Train(classify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, lw := range []float64{0.5, 1.0, 2.0, 4.0} {
		b.Run(fmt.Sprintf("lambdaL=%.1f", lw), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				ht := classify.NewHypertext(model, classify.HypertextOptions{
					LinkWeight: lw, DisableFolders: true,
				})
				acc = classify.Accuracy(ht.ClassifyGraph(docs), truth)
			}
			b.ReportMetric(acc, "accuracy")
		})
	}
}

// BenchmarkAblationWALSync contrasts kvstore commit latency across WAL
// durability policies (design decision S2).
func BenchmarkAblationWALSync(b *testing.B) {
	for _, variant := range []struct {
		name string
		sync kvstore.SyncPolicy
	}{
		{"fsyncAlways", kvstore.SyncAlways},
		{"groupCommit", kvstore.SyncGroup},
		{"noSync", kvstore.SyncNever},
	} {
		b.Run(variant.name, func(b *testing.B) {
			s, err := kvstore.Open(b.TempDir(), kvstore.Options{Sync: variant.sync})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key := []byte(fmt.Sprintf("k%09d", i))
				if err := s.Put(key, []byte("value-payload-16")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
