package memex

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// worldFor builds a small deterministic world and engine for API tests.
func worldFor(t *testing.T) (*World, *Memex) {
	t.Helper()
	world := GenerateWorld(WorldConfig{Seed: 99})
	now := world.Trace.Visits[len(world.Trace.Visits)-1].Time.Add(time.Hour)
	m, err := Open(Config{
		Dir:    t.TempDir(),
		Source: world.Source(),
		Now:    func() time.Time { return now },
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { m.Close() })
	return world, m
}

func TestPublicAPIEndToEnd(t *testing.T) {
	world, m := worldFor(t)
	n, err := m.ReplayTrace(world, 800)
	if err != nil {
		t.Fatalf("ReplayTrace: %v", err)
	}
	if n != 800 {
		t.Fatalf("replayed %d visits", n)
	}
	m.DrainBackground()
	m.RetrainClassifiers()
	st := m.RebuildThemes()
	if st.Themes == 0 {
		t.Fatal("no themes from replayed community")
	}

	status := m.Status()
	if status.Visits != 800 || status.PagesIndexed == 0 {
		t.Fatalf("Status = %+v", status)
	}

	// Search via a topical query derived from the corpus.
	leaf := world.Corpus.Leaves()[0]
	top := world.Corpus.Topics[leaf.Parent]
	hits := m.Search(0, top.Name+"_"+leaf.Name+"01", 5)
	if len(hits) == 0 {
		t.Fatal("no public-API search hits")
	}

	// Profiles for replayed users.
	found := false
	for _, u := range world.Trace.Users[:10] {
		if p := m.Profile(u.ID); p != nil && len(p.Weights) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no user has a profile after replay")
	}
}

func TestPublicAPIOverHTTP(t *testing.T) {
	world, m := worldFor(t)
	ts := httptest.NewServer(m.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)

	if err := c.Register(1, "tester"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	page := world.Corpus.Page(world.Corpus.LeafPages[world.Corpus.Leaves()[0].ID][0])
	if err := c.Visit(1, page.URL, "", time.Date(2000, 6, 1, 12, 0, 0, 0, time.UTC), "community"); err != nil {
		t.Fatalf("Visit: %v", err)
	}
	m.DrainBackground()
	st, err := c.Status()
	if err != nil || st.Visits != 1 {
		t.Fatalf("Status over HTTP: %+v err=%v", st, err)
	}
}

func TestWorldDeterminism(t *testing.T) {
	a := GenerateWorld(WorldConfig{Seed: 5})
	b := GenerateWorld(WorldConfig{Seed: 5})
	if len(a.Corpus.Pages) != len(b.Corpus.Pages) || len(a.Trace.Visits) != len(b.Trace.Visits) {
		t.Fatal("GenerateWorld not deterministic")
	}
	if len(a.Trace.Visits) == 0 {
		t.Fatal("empty trace")
	}
}

func TestWorldSourceResolvesLinks(t *testing.T) {
	world := GenerateWorld(WorldConfig{Seed: 6})
	src := world.Source()
	p := world.Corpus.Page(1)
	content, ok := src.Lookup(p.URL)
	if !ok || content.Title == "" {
		t.Fatal("Lookup failed")
	}
	if len(content.Links) != len(p.Links) {
		t.Fatalf("links: %d vs %d", len(content.Links), len(p.Links))
	}
	for _, l := range content.Links {
		if _, ok := src.Lookup(l); !ok {
			t.Fatalf("link %q unresolvable", l)
		}
	}
	if _, ok := src.Lookup("http://unknown.example/"); ok {
		t.Fatal("unknown URL resolved")
	}
}

func TestBookmarkFlowThroughFacade(t *testing.T) {
	world, m := worldFor(t)
	m.RegisterUser(1, "alice")
	var content []string
	for _, pid := range world.Corpus.LeafPages[world.Corpus.Leaves()[0].ID] {
		if p := world.Corpus.Page(pid); !p.Front {
			content = append(content, p.URL)
		}
	}
	at := time.Date(2000, 6, 1, 10, 0, 0, 0, time.UTC)
	for i, url := range content[:4] {
		if err := m.AddBookmark(1, url, "/Research", at.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatalf("AddBookmark: %v", err)
		}
	}
	m.DrainBackground()

	var buf bytes.Buffer
	if err := m.ExportBookmarks(1, &buf); err != nil {
		t.Fatalf("Export: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Research") || !strings.Contains(out, content[0]) {
		t.Fatal("exported bookmarks incomplete")
	}
}
